//! The procedure-granularity softcache — the paper's ARM prototype (§2.3).
//!
//! Differences from the basic-block SPARC prototype, as the paper lists
//! them:
//!
//! * "Code is chunked by procedures rather than by basic blocks" — the MC
//!   lifts whole functions using the image's symbol table; internal
//!   branches keep their relative offsets, so chunks are
//!   position-independent and only call sites need rewriting.
//! * "Procedure call sites use a 'redirector' stub as a permanent landing
//!   pad for procedure returns to avoid having to walk the ARM's stack at
//!   invalidation time" — every `jal` is re-pointed at a two-word pinned
//!   stub:
//!
//!   ```text
//!   redir:   jal  <callee | miss>   # sets ra = redir+4: the landing pad
//!            j    <continuation | miss>
//!   ```
//!
//!   Return addresses therefore always point into pinned memory; evicting
//!   a procedure only has to fix redirector words, never the stack.
//! * "Indirect jumps are not supported" — the MC refuses procedures
//!   containing `jr`/`jalr` (compile the workload with
//!   `jump_tables: false`).
//!
//! Unlike the SPARC variant's flush-everything policy, this controller
//! **evicts individual procedures LRU-first** from a first-fit heap, which
//! is what produces the paging behaviour of Figure 8.
//!
//! This cache receives no speculative pushes: it only ever issues
//! `FetchProc`, so the batched `FetchBatch`/`Reply::Batch` protocol never
//! competes with its pinned redirectors or LRU set — the
//! prefetch-never-evicts-pinned invariant holds here trivially.

use crate::cc::CacheError;
use crate::endpoint::McEndpoint;
use crate::integrity::{
    IntegrityConfig, IntegrityStats, MemFaultInjector, MemFaultPlan, SealTable,
};
use crate::mc::{errcode, Mc};
use crate::protocol::{ChunkPayload, ExitDesc, PatchKind, Reply, Request};
use softcache_isa::image::Image;
use softcache_isa::inst::Inst;
use softcache_isa::layout::TCACHE_BASE;
use softcache_isa::{cf, decode, encode};
use softcache_net::{LinkModel, LinkPolicy, LinkStats};
use softcache_sim::{ExecStats, Machine, Step, TraceStats, Trap};
use std::collections::{HashMap, HashSet};

/// MC-side: rewrite the whole procedure containing `orig_pc`. The chunk is
/// position-independent (`dest` is ignored); each call site is reported as
/// an exit for the CC to wire through a redirector.
pub(crate) fn rewrite_proc(mc: &mut Mc, orig_pc: u32, _dest: u32) -> Result<ChunkPayload, u32> {
    let func = mc
        .image_ref()
        .function_at(orig_pc)
        .ok_or(errcode::NO_SUCH_PROC)?;
    let start = func.addr;
    let size = func.size;
    if size == 0 || size % 4 != 0 {
        return Err(errcode::NO_SUCH_PROC);
    }
    let n = size / 4;
    let mut words = Vec::with_capacity(n as usize);
    let mut exits = Vec::new();
    for i in 0..n {
        let addr = start + i * 4;
        let word = mc.image_ref().text_word(addr).ok_or(errcode::BAD_ADDRESS)?;
        let inst = decode(word).map_err(|_| errcode::BAD_INSTRUCTION)?;
        match cf::classify(inst, addr) {
            cf::CtrlFlow::Call { target } => {
                // Via redirector; the CC patches the jal at install time.
                exits.push(ExitDesc {
                    stub_slot: i,
                    patch_slot: i,
                    kind: PatchKind::Retarget,
                    orig_target: target,
                });
                words.push(word);
            }
            cf::CtrlFlow::Branch { taken } => {
                if taken < start || taken >= start + size {
                    return Err(errcode::UNSUPPORTED_IN_PROC);
                }
                words.push(word);
            }
            cf::CtrlFlow::Jump { target } => {
                if target < start || target >= start + size {
                    return Err(errcode::UNSUPPORTED_IN_PROC);
                }
                words.push(word);
            }
            cf::CtrlFlow::IndirectJump | cf::CtrlFlow::IndirectCall => {
                return Err(errcode::UNSUPPORTED_IN_PROC);
            }
            _ => words.push(word),
        }
    }
    Ok(ChunkPayload {
        orig_start: start,
        body_words: n,
        words,
        exits,
        resolved: Vec::new(),
        extra_orig: Vec::new(),
    })
}

/// Configuration of the procedure-granularity cache.
#[derive(Clone, Copy, Debug)]
pub struct ProcConfig {
    /// Base of the CC code memory.
    pub base: u32,
    /// Total CC code memory in bytes (redirectors + procedures) — the
    /// "CC memory" swept in Figure 8.
    pub memory_bytes: u32,
    /// Link cost model.
    pub link: LinkModel,
    /// Retry/backoff policy for the remote MC endpoint (ignored when the
    /// MC is fused in-process).
    pub link_policy: LinkPolicy,
    /// Fixed CC cycles per serviced miss.
    pub miss_handler_cycles: u64,
    /// Cycles per installed word.
    pub install_cycles_per_word: u64,
    /// Execute translated code through the simulator's superblock micro-op
    /// engine (host-side speed only; simulated results are bit-identical
    /// either way — tests A/B it).
    pub superblocks: bool,
    /// Integrity-seal verification and corruption-watchdog knobs
    /// (DESIGN.md §13).
    pub integrity: IntegrityConfig,
    /// Instruction budget.
    pub fuel: u64,
}

impl Default for ProcConfig {
    fn default() -> ProcConfig {
        ProcConfig {
            base: TCACHE_BASE,
            memory_bytes: 16 * 1024,
            link: LinkModel::default(),
            link_policy: LinkPolicy::default(),
            miss_handler_cycles: 60,
            install_cycles_per_word: 2,
            superblocks: true,
            integrity: IntegrityConfig::default(),
            fuel: 2_000_000_000,
        }
    }
}

/// Statistics for the procedure cache.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProcStats {
    /// Procedures downloaded from the MC.
    pub fetches: u64,
    /// Procedures evicted.
    pub evictions: u64,
    /// Cycle timestamp of every eviction (Figure 8's paging-over-time).
    pub eviction_cycles: Vec<u64>,
    /// Miss traps serviced.
    pub miss_traps: u64,
    /// Redirectors allocated.
    pub redirectors: u64,
    /// Words installed.
    pub words_installed: u64,
    /// Cycles spent servicing misses.
    pub miss_cycles: u64,
    /// Link traffic.
    pub link: LinkStats,
    /// Integrity-seal ledger (DESIGN.md §13).
    pub integrity: IntegrityStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionKind {
    Free,
    /// A resident procedure keyed by its entry address.
    Proc {
        func: u32,
        last_use: u64,
    },
    /// A pinned redirector pair (never evicted) — the paper's §4 pinning
    /// capability in action.
    Pinned,
}

#[derive(Clone, Copy, Debug)]
struct Region {
    start: u32,
    size: u32,
    kind: RegionKind,
}

/// First-fit heap with LRU procedure eviction and pinned regions.
struct Heap {
    regions: Vec<Region>,
}

impl Heap {
    fn new(base: u32, size: u32) -> Heap {
        // Keep every boundary word-aligned: procedure sizes are multiples
        // of 4 and redirectors carve 8 bytes from the top, so the total
        // is rounded down to a multiple of 8.
        Heap {
            regions: vec![Region {
                start: base,
                size: size & !7,
                kind: RegionKind::Free,
            }],
        }
    }

    fn find_free(&self, size: u32) -> Option<usize> {
        self.regions
            .iter()
            .position(|r| r.kind == RegionKind::Free && r.size >= size)
    }

    fn carve(&mut self, idx: usize, size: u32, kind: RegionKind) -> u32 {
        let r = self.regions[idx];
        debug_assert!(r.kind == RegionKind::Free && r.size >= size);
        self.regions[idx] = Region {
            start: r.start,
            size,
            kind,
        };
        if r.size > size {
            self.regions.insert(
                idx + 1,
                Region {
                    start: r.start + size,
                    size: r.size - size,
                    kind: RegionKind::Free,
                },
            );
        }
        r.start
    }

    /// Free region `idx` and coalesce with free neighbours.
    fn release(&mut self, idx: usize) {
        self.regions[idx].kind = RegionKind::Free;
        // Coalesce right then left.
        if idx + 1 < self.regions.len() && self.regions[idx + 1].kind == RegionKind::Free {
            self.regions[idx].size += self.regions[idx + 1].size;
            self.regions.remove(idx + 1);
        }
        if idx > 0 && self.regions[idx - 1].kind == RegionKind::Free {
            self.regions[idx - 1].size += self.regions[idx].size;
            self.regions.remove(idx);
        }
    }

    /// Carve 8 bytes for a redirector from the END of the trailing free
    /// region, keeping all pinned stubs contiguous at the top of memory so
    /// they never fragment the procedure heap.
    fn carve_pinned_top(&mut self) -> Option<u32> {
        // Skip the already-pinned tail; the region just below it must be
        // free to grow the pinned area downward.
        let mut idx = self.regions.len();
        while idx > 0 && self.regions[idx - 1].kind == RegionKind::Pinned {
            idx -= 1;
        }
        if idx == 0 {
            return None;
        }
        let donor = &mut self.regions[idx - 1];
        if donor.kind != RegionKind::Free || donor.size < 8 {
            return None;
        }
        donor.size -= 8;
        let addr = donor.start + donor.size;
        let empty = donor.size == 0;
        if empty {
            self.regions.remove(idx - 1);
            idx -= 1;
        }
        // Merge into the adjacent pinned region if one exists, keeping the
        // region list compact.
        if idx < self.regions.len() && self.regions[idx].kind == RegionKind::Pinned {
            self.regions[idx].start = addr;
            self.regions[idx].size += 8;
        } else {
            self.regions.insert(
                idx,
                Region {
                    start: addr,
                    size: 8,
                    kind: RegionKind::Pinned,
                },
            );
        }
        Some(addr)
    }

    /// Index of the least-recently-used procedure region. Superseded by
    /// `ProcCc::pick_victim` (TRRIP); kept as the reference policy for
    /// the heap unit tests.
    #[cfg(test)]
    fn lru_proc(&self) -> Option<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r.kind {
                RegionKind::Proc { last_use, .. } => Some((i, last_use)),
                _ => None,
            })
            .min_by_key(|&(_, lu)| lu)
            .map(|(i, _)| i)
    }

    fn region_of_func(&self, func: u32) -> Option<usize> {
        self.regions.iter().position(|r| match r.kind {
            RegionKind::Proc { func: f, .. } => f == func,
            _ => false,
        })
    }

    fn touch(&mut self, func: u32, now: u64) {
        if let Some(idx) = self.region_of_func(func) {
            if let RegionKind::Proc { func: f, .. } = self.regions[idx].kind {
                self.regions[idx].kind = RegionKind::Proc {
                    func: f,
                    last_use: now,
                };
            }
        }
    }
}

/// TRRIP buckets for the procedure tier (DESIGN.md §16), mirroring the
/// basic-block tier: touched procedures go hot, previously evicted ones
/// reinstall warm, first-time installs land near-distant.
const PROC_RRPV_MAX: u8 = 3;
const PROC_RRPV_HOT: u8 = 0;
const PROC_RRPV_WARM: u8 = 1;
const PROC_RRPV_FRESH: u8 = 2;

#[derive(Clone, Copy, Debug)]
enum RedirSlot {
    /// First word: `jal callee`.
    Callee,
    /// Second word: `j continuation`.
    Continuation,
}

#[derive(Clone, Copy, Debug)]
struct Redirector {
    addr: u32,
    /// Entry address of the callee.
    callee_orig: u32,
    /// Original continuation address (call site + 4).
    cont_orig: u32,
}

#[derive(Clone, Debug)]
struct MissRec {
    /// Original address to make resident and resume at.
    target_orig: u32,
    /// Redirector word to patch once resident.
    site: Option<(usize, RedirSlot)>, // redirector index
}

#[derive(Clone, Debug)]
struct ResidentProc {
    orig_start: u32,
    orig_size: u32,
    tc_start: u32,
}

/// Result of a procedure-cache run.
#[derive(Clone, Debug)]
pub struct ProcRunOutput {
    /// Program exit code.
    pub exit_code: i32,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// Cache statistics.
    pub cache: ProcStats,
    /// Execution statistics.
    pub exec: ExecStats,
    /// Superblock-engine telemetry (host-side only; excluded from the
    /// bit-identity contract, unlike `exec` and `cache`).
    pub trace: TraceStats,
}

/// The procedure-granularity softcache system (ARM prototype).
pub struct ProcCacheSystem {
    image: Image,
    cfg: ProcConfig,
    endpoint: McEndpoint,
    chaos: Option<MemFaultPlan>,
}

struct ProcCc {
    cfg: ProcConfig,
    heap: Heap,
    /// func entry → resident info.
    resident: HashMap<u32, ResidentProc>,
    /// call-site original address → redirector index.
    redir_by_site: HashMap<u32, usize>,
    redirectors: Vec<Redirector>,
    records: Vec<MissRec>,
    clock: u64,
    stats: ProcStats,
    /// CRC-32 seals over installed procedures and redirector words. Lives
    /// in CC metadata, never in simulated memory (DESIGN.md §13).
    seals: SealTable,
    /// Verify seals at trap entry (armed when a fault plan is active).
    armed: bool,
    /// Seal failures per ORIGINAL procedure entry. Deliberately survives
    /// resync so a stuck-at fault cannot livelock the retranslate loop
    /// across epochs.
    fails: HashMap<u32, u32>,
    /// Procedures the watchdog has pinned to the slow path.
    pinned_origs: HashSet<u32>,
    /// Re-reference prediction per resident procedure entry. Victim
    /// selection under heap pressure takes the highest RRPV instead of
    /// strict recency (DESIGN.md §16).
    rrpv: HashMap<u32, u8>,
    /// Lifetime entries per procedure, never cleared — breaks RRPV ties
    /// towards the procedure entered least over the whole run.
    heat: HashMap<u32, u64>,
}

fn trace_on() -> bool {
    std::env::var_os("SOFTCACHE_TRACE").is_some()
}

impl ProcCc {
    fn new(cfg: ProcConfig) -> ProcCc {
        ProcCc {
            heap: Heap::new(cfg.base, cfg.memory_bytes),
            armed: cfg.integrity.verify_traps,
            cfg,
            resident: HashMap::new(),
            redir_by_site: HashMap::new(),
            redirectors: Vec::new(),
            records: Vec::new(),
            clock: 0,
            stats: ProcStats::default(),
            seals: SealTable::default(),
            fails: HashMap::new(),
            pinned_origs: HashSet::new(),
            rrpv: HashMap::new(),
            heat: HashMap::new(),
        }
    }

    /// Turn on seal verification at every trap entry (implied by running
    /// under a fault plan).
    fn arm_integrity(&mut self) {
        self.armed = true;
    }

    fn rpc(
        &mut self,
        ep: &mut McEndpoint,
        machine: &mut Machine,
        req: &Request,
    ) -> Result<Reply, CacheError> {
        let out = ep.rpc(req)?;
        let stall = self.stats.link.record_attempts(
            &self.cfg.link,
            out.req_bytes,
            out.rep_bytes,
            out.attempts,
            out.backoff,
        );
        self.stats.link.session.absorb(&out.session);
        self.stats.miss_cycles += stall;
        machine.stats.cycles += stall;
        Ok(out.reply)
    }

    /// Recover from an MC restart: drop every resident procedure (their
    /// translations are unverifiable against the fresh MC) but keep the
    /// pinned redirectors — return addresses on the stack point into them,
    /// which is exactly why they are pinned. Every redirector word is
    /// re-pointed; now-absent targets become fresh miss records that
    /// refetch on demand.
    fn resync(&mut self, machine: &mut Machine) {
        while let Some(i) = self
            .heap
            .regions
            .iter()
            .position(|r| matches!(r.kind, RegionKind::Proc { .. }))
        {
            self.heap.release(i);
        }
        self.resident.clear();
        // Residence predictions die with the residents; lifetime heat
        // survives (it describes the program, not the epoch).
        self.rrpv.clear();
        // Every seal is stale: the procedure seals cover now-freed regions
        // and the redirector words are about to be rewritten (resealing
        // them below). The `fails` ledger is deliberately kept.
        self.seals.clear();
        for ridx in 0..self.redirectors.len() {
            self.write_redir_word(machine, ridx, RedirSlot::Callee);
            self.write_redir_word(machine, ridx, RedirSlot::Continuation);
        }
        // Resident procedures are gone: return-address predictions into
        // their old tcache slots would only mispredict, and slow-path pins
        // keyed by recycled addresses would suppress the wrong spans.
        machine.clear_ras();
        machine.clear_slow_pins();
        self.stats.link.session.resyncs += 1;
    }

    /// Find the resident procedure containing `orig` and return the
    /// corresponding tcache address.
    fn resident_addr(&mut self, orig: u32) -> Option<u32> {
        let p = self
            .resident
            .values()
            .find(|p| orig >= p.orig_start && orig < p.orig_start + p.orig_size)?;
        let tc = p.tc_start + (orig - p.orig_start);
        let func = p.orig_start;
        self.clock += 1;
        let now = self.clock;
        self.heap.touch(func, now);
        self.rrpv.insert(func, PROC_RRPV_HOT);
        *self.heat.entry(func).or_insert(0) += 1;
        Some(tc)
    }

    /// Write one redirector word.
    fn write_redir_word(&mut self, machine: &mut Machine, ridx: usize, slot: RedirSlot) {
        let r = self.redirectors[ridx];
        let (addr, target_orig) = match slot {
            RedirSlot::Callee => (r.addr, r.callee_orig),
            RedirSlot::Continuation => (r.addr + 4, r.cont_orig),
        };
        // Resident (without LRU touch — this is bookkeeping, not use)?
        let target_tc = self
            .resident
            .values()
            .find(|p| target_orig >= p.orig_start && target_orig < p.orig_start + p.orig_size)
            .map(|p| p.tc_start + (target_orig - p.orig_start));
        let word = match (target_tc, slot) {
            (Some(tc), RedirSlot::Callee) => {
                cf::retarget(encode(Inst::Jal { off: 0 }), addr, tc).expect("in range")
            }
            (Some(tc), RedirSlot::Continuation) => {
                cf::retarget(encode(Inst::J { off: 0 }), addr, tc).expect("in range")
            }
            (None, _) => {
                let idx = self.records.len() as u32;
                self.records.push(MissRec {
                    target_orig,
                    site: Some((ridx, slot)),
                });
                encode(Inst::Miss { idx })
            }
        };
        machine.mem.write_u32(addr, word).expect("redir mapped");
        // Redirector words are entered on every cross-procedure transfer;
        // re-predecode the rewritten word eagerly. A no-op when the
        // superblock engine is off — lowering words that path would never
        // execute was pure waste.
        machine.predecode_range(addr, addr + 4);
        // Each redirector word is independently regenerable from CC
        // metadata, so it gets its own one-word seal.
        self.seals.seal(machine, addr, 4);
    }

    /// Evict the procedure in heap region `idx`, fixing every redirector
    /// word that points into it. No stack walk — that is the point of the
    /// redirectors.
    fn evict_region(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        idx: usize,
    ) -> Result<(), CacheError> {
        let RegionKind::Proc { func, .. } = self.heap.regions[idx].kind else {
            panic!("evict_region on non-proc region");
        };
        let proc = self.resident.remove(&func).expect("resident");
        self.heap.release(idx);
        self.rrpv.remove(&func);
        self.seals.unseal(proc.tc_start);
        if self.pinned_origs.contains(&func) {
            machine.unpin_slow_span(proc.tc_start, proc.tc_start + proc.orig_size);
        }
        let span = proc.orig_start..proc.orig_start + proc.orig_size;
        for ridx in 0..self.redirectors.len() {
            let r = self.redirectors[ridx];
            if span.contains(&r.callee_orig) {
                self.write_redir_word(machine, ridx, RedirSlot::Callee);
            }
            if span.contains(&r.cont_orig) {
                self.write_redir_word(machine, ridx, RedirSlot::Continuation);
            }
        }
        if trace_on() {
            eprintln!(
                "[proc] evict func {:#x} (tc {:#x}+{})",
                func, proc.tc_start, proc.orig_size
            );
        }
        self.stats.evictions += 1;
        self.stats.eviction_cycles.push(machine.stats.cycles);
        match self.rpc(ep, machine, &Request::Invalidate { orig_pc: func }) {
            Ok(reply) => {
                if !matches!(reply, Reply::Ack) {
                    return Err(CacheError::Proto);
                }
            }
            // The MC restarted: its mirror is already empty, and the rest
            // of our residence state is just as stale as this one entry.
            Err(CacheError::McRestarted) => self.resync(machine),
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Pick the eviction victim: age every resident procedure until one
    /// reaches the distant bucket, then take the highest RRPV, breaking
    /// ties towards the least lifetime heat, then the least recent use.
    fn pick_victim(&mut self) -> Option<usize> {
        let procs: Vec<(usize, u32, u64)> = self
            .heap
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r.kind {
                RegionKind::Proc { func, last_use } => Some((i, func, last_use)),
                _ => None,
            })
            .collect();
        let max = procs
            .iter()
            .map(|&(_, f, _)| self.rrpv.get(&f).copied().unwrap_or(PROC_RRPV_FRESH))
            .max()?;
        if max < PROC_RRPV_MAX {
            let delta = PROC_RRPV_MAX - max;
            for v in self.rrpv.values_mut() {
                *v = (*v + delta).min(PROC_RRPV_MAX);
            }
        }
        procs
            .into_iter()
            .max_by_key(|&(i, f, lu)| {
                let r = self.rrpv.get(&f).copied().unwrap_or(PROC_RRPV_FRESH);
                let heat = self.heat.get(&f).copied().unwrap_or(0);
                use std::cmp::Reverse;
                (r, Reverse(heat), Reverse(lu), Reverse(i))
            })
            .map(|(i, _, _)| i)
    }

    /// Allocate `size` bytes, evicting cold procedures as needed. Pinned
    /// (redirector) allocations are carved from the top of memory so they
    /// stay contiguous and never fragment the procedure heap.
    fn alloc(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        size: u32,
        kind: RegionKind,
    ) -> Result<u32, CacheError> {
        loop {
            if kind == RegionKind::Pinned {
                debug_assert_eq!(size, 8, "redirectors are two words");
                if let Some(addr) = self.heap.carve_pinned_top() {
                    return Ok(addr);
                }
            } else if let Some(idx) = self.heap.find_free(size) {
                return Ok(self.heap.carve(idx, size, kind));
            }
            let Some(victim) = self.pick_victim() else {
                return Err(CacheError::ChunkTooBig {
                    bytes: size,
                    capacity: self.cfg.memory_bytes,
                });
            };
            self.evict_region(machine, ep, victim)?;
        }
    }

    /// Make the procedure containing `orig` resident; return the tcache
    /// address corresponding to `orig`.
    fn ensure(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        if let Some(tc) = self.resident_addr(orig) {
            return Ok(tc);
        }
        let req = Request::FetchProc {
            orig_pc: orig,
            dest: 0,
        };
        let chunk = loop {
            match self.rpc(ep, machine, &req) {
                Ok(Reply::Chunk(c)) => break c,
                Ok(Reply::Err(code)) => return Err(CacheError::Mc(code)),
                Ok(_) => return Err(CacheError::Proto),
                // MC restart: drop stale residence state and refetch from
                // the fresh server.
                Err(CacheError::McRestarted) => self.resync(machine),
                Err(e) => return Err(e),
            }
        };
        let bytes = chunk.words.len() as u32 * 4;
        // Phase 1: make sure every call site has a (pinned) redirector
        // BEFORE the chunk is placed — redirector carving may need to
        // evict procedures, and doing it now means it can never evict the
        // chunk we are installing.
        let mut site_redirs = Vec::with_capacity(chunk.exits.len());
        for exit in &chunk.exits {
            let site_orig = chunk.orig_start + exit.stub_slot * 4;
            let ridx = match self.redir_by_site.get(&site_orig) {
                Some(&r) => r,
                None => {
                    let addr = self.alloc(machine, ep, 8, RegionKind::Pinned)?;
                    let ridx = self.redirectors.len();
                    self.redirectors.push(Redirector {
                        addr,
                        callee_orig: exit.orig_target,
                        cont_orig: site_orig + 4,
                    });
                    self.redir_by_site.insert(site_orig, ridx);
                    self.stats.redirectors += 1;
                    ridx
                }
            };
            site_redirs.push((exit.stub_slot, ridx));
        }
        // Phase 2: place the chunk.
        self.clock += 1;
        let now = self.clock;
        let tc_start = self.alloc(
            machine,
            ep,
            bytes,
            RegionKind::Proc {
                func: chunk.orig_start,
                last_use: now,
            },
        )?;
        machine
            .mem
            .write_words(tc_start, &chunk.words)
            .expect("heap region mapped");
        self.resident.insert(
            chunk.orig_start,
            ResidentProc {
                orig_start: chunk.orig_start,
                orig_size: bytes,
                tc_start,
            },
        );
        // A procedure seen before reinstalls warm; a first-time install
        // lands near-distant until it proves itself.
        let insert = if self.heat.contains_key(&chunk.orig_start) {
            PROC_RRPV_WARM
        } else {
            PROC_RRPV_FRESH
        };
        self.rrpv.insert(chunk.orig_start, insert);
        *self.heat.entry(chunk.orig_start).or_insert(0) += 1;
        // Phase 3: wire every call site through its redirector.
        for (stub_slot, ridx) in site_redirs {
            self.write_redir_word(machine, ridx, RedirSlot::Callee);
            self.write_redir_word(machine, ridx, RedirSlot::Continuation);
            let site_tc = tc_start + stub_slot * 4;
            let jal = cf::retarget(
                encode(Inst::Jal { off: 0 }),
                site_tc,
                self.redirectors[ridx].addr,
            )
            .expect("in range");
            machine.mem.write_u32(site_tc, jal).expect("mapped");
        }
        // The procedure body and its rewired call sites are final. A
        // watchdog-pinned procedure is barred from superblock lowering
        // BEFORE predecode so no uops form for it; everything else gets
        // predecoded at chunk granularity, pre-linking procedure-internal
        // superblock successors so the first call runs chained.
        if self.pinned_origs.contains(&chunk.orig_start) {
            machine.pin_slow_span(tc_start, tc_start + bytes);
        }
        machine.predecode_range(tc_start, tc_start + bytes);
        self.seals.seal(machine, tc_start, bytes);
        if trace_on() {
            eprintln!(
                "[proc] install func {:#x} at tc {:#x} size {} ({} exits)",
                chunk.orig_start,
                tc_start,
                bytes,
                chunk.exits.len()
            );
        }
        self.stats.fetches += 1;
        self.stats.words_installed += chunk.words.len() as u64;
        let cycles = self.cfg.miss_handler_cycles
            + self.cfg.install_cycles_per_word * chunk.words.len() as u64;
        self.stats.miss_cycles += cycles;
        machine.stats.cycles += cycles;
        Ok(tc_start + (orig - chunk.orig_start))
    }

    fn handle_miss(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        idx: u32,
    ) -> Result<(), CacheError> {
        self.stats.miss_traps += 1;
        let rec = self
            .records
            .get(idx as usize)
            .cloned()
            .ok_or(CacheError::BadMissRecord(idx))?;
        if trace_on() {
            eprintln!(
                "[proc] miss #{idx} at pc {:#x} -> target {:#x} site {:?}",
                machine.cpu.pc, rec.target_orig, rec.site
            );
        }
        let target_tc = self.verified_target(machine, ep, rec.target_orig)?;
        match rec.site {
            Some((ridx, slot)) => {
                // Re-point the redirector word at the now-resident target,
                // then resume at the *redirector word itself*: the patched
                // `jal` must execute so `ra` becomes the landing pad
                // (`redir + 4`). Jumping straight to the callee would leave
                // `ra` pointing into the caller's (evictable) body —
                // exactly what redirectors exist to prevent.
                self.write_redir_word(machine, ridx, slot);
                let r = self.redirectors[ridx];
                machine.cpu.pc = match slot {
                    RedirSlot::Callee => r.addr,
                    RedirSlot::Continuation => r.addr + 4,
                };
            }
            None => machine.cpu.pc = target_tc,
        }
        Ok(())
    }

    // ---- integrity: verification, healing, fault injection ----

    /// `ensure` plus (when armed) a seal check on the span containing the
    /// returned address. A failed check quarantines and re-ensures; with
    /// no injection between iterations the loop terminates in at most two.
    fn verified_target(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        loop {
            let tc = self.ensure(machine, ep, orig)?;
            if !self.armed {
                return Ok(tc);
            }
            let Some((start, _)) = self.seals.containing(tc) else {
                return Ok(tc);
            };
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                return Ok(tc);
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
        }
    }

    /// Verify every live seal, healing each failed span before the guest
    /// can resume.
    fn verify_and_heal(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
    ) -> Result<(), CacheError> {
        for start in self.seals.starts() {
            // Healing earlier spans may have unsealed this one.
            if !self.seals.sealed_at(start) {
                continue;
            }
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                continue;
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
        }
        Ok(())
    }

    /// Quarantine and repair one corrupted sealed span. Procedures are
    /// evicted (refetched on demand through the normal miss path) — never
    /// patched in place, since installed bytes carry call-site rewrites a
    /// fresh MC copy would not reproduce. Redirector words regenerate
    /// purely from CC metadata via `write_redir_word`.
    fn heal_span(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        start: u32,
    ) -> Result<(), CacheError> {
        let hit = self
            .resident
            .values()
            .find(|p| start >= p.tc_start && start < p.tc_start + p.orig_size)
            .map(|p| p.orig_start);
        if let Some(orig) = hit {
            let fails = self.fails.entry(orig).or_insert(0);
            *fails += 1;
            let newly_pinned =
                *fails > self.cfg.integrity.watchdog_threshold && self.pinned_origs.insert(orig);
            if newly_pinned {
                self.stats.integrity.slow_path_pins += 1;
            } else {
                self.stats.integrity.retranslations += 1;
            }
            self.stats.integrity.quarantines += 1;
            // Return-address predictions into the quarantined body are
            // poisoned along with it.
            machine.clear_ras();
            let idx = self.heap.region_of_func(orig).expect("resident proc");
            self.evict_region(machine, ep, idx)?;
            return Ok(());
        }
        if let Some((ridx, slot)) = self.redirectors.iter().enumerate().find_map(|(i, r)| {
            if r.addr == start {
                Some((i, RedirSlot::Callee))
            } else if r.addr + 4 == start {
                Some((i, RedirSlot::Continuation))
            } else {
                None
            }
        }) {
            self.write_redir_word(machine, ridx, slot);
            self.stats.integrity.retranslations += 1;
            return Ok(());
        }
        // Stale bookkeeping (span no longer owned by anything): drop it.
        self.seals.unseal(start);
        self.stats.integrity.retranslations += 1;
        Ok(())
    }

    /// One fault-injection checkpoint: land this tick's scheduled flips,
    /// then verify-and-heal so corrupted words never execute.
    fn chaos_tick(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        inj: &mut MemFaultInjector,
    ) -> Result<(), CacheError> {
        let fire = inj.begin_tick();
        // A scheduled dcache fire is still consumed (keeping seeded
        // schedules aligned across systems) but this system has no data
        // cache to land it in.
        if !fire.any() {
            return Ok(());
        }
        // Resolve the guest pc to its original address BEFORE anything is
        // corrupted: if healing evicts the very procedure being executed,
        // execution is re-routed through the ordinary miss path. Bodies
        // are position-independent 1:1 copies, so the offset maps back.
        let pc = machine.cpu.pc;
        let pc_orig = self
            .resident
            .values()
            .find(|p| pc >= p.tc_start && pc < p.tc_start + p.orig_size)
            .map(|p| p.orig_start + (pc - p.tc_start));
        if fire.code {
            self.inject_code_flip(machine, inj);
        }
        if fire.redirector {
            self.inject_redirector_flip(machine, inj);
        }
        self.verify_and_heal(machine, ep)?;
        let pc = machine.cpu.pc;
        let still_resident = self
            .resident
            .values()
            .any(|p| pc >= p.tc_start && pc < p.tc_start + p.orig_size);
        if !still_resident {
            if let Some(orig) = pc_orig {
                machine.cpu.pc = self.ensure(machine, ep, orig)?;
            }
        }
        Ok(())
    }

    /// Flip one seeded bit in a resident procedure body (or in the plan's
    /// stuck procedure, if resident).
    fn inject_code_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        let addr = if let Some(orig) = inj.plan.stuck_orig {
            let Some(p) = self
                .resident
                .values()
                .find(|p| orig >= p.orig_start && orig < p.orig_start + p.orig_size)
            else {
                return;
            };
            p.tc_start + inj.pick((p.orig_size / 4) as u64) as u32 * 4
        } else {
            // Sort by tcache address: HashMap iteration order must not
            // leak into the deterministic injection schedule.
            let mut procs: Vec<(u32, u32)> = self
                .resident
                .values()
                .map(|p| (p.tc_start, p.orig_size / 4))
                .collect();
            procs.sort_unstable();
            let total: u64 = procs.iter().map(|&(_, w)| w as u64).sum();
            if total == 0 {
                return;
            }
            let mut k = inj.pick(total);
            let mut addr = 0;
            for (tc_start, words) in procs {
                if k < words as u64 {
                    addr = tc_start + k as u32 * 4;
                    break;
                }
                k -= words as u64;
            }
            addr
        };
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.code_flips += 1;
    }

    /// Flip one seeded bit in a redirector word.
    fn inject_redirector_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        if self.redirectors.is_empty() {
            return;
        }
        let k = inj.pick(self.redirectors.len() as u64 * 2);
        let r = self.redirectors[(k / 2) as usize];
        let addr = r.addr + 4 * (k % 2) as u32;
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.redirector_flips += 1;
    }

    fn flip_bit(&mut self, machine: &mut Machine, addr: u32, inj: &mut MemFaultInjector) {
        let word = machine.mem.read_u32(addr).expect("tcache mapped");
        let flipped = word ^ (1u32 << inj.pick(32));
        machine.mem.write_u32(addr, flipped).expect("tcache mapped");
    }
}

impl ProcCacheSystem {
    /// Fused system (MC in-process).
    pub fn new(image: Image, cfg: ProcConfig) -> ProcCacheSystem {
        let mc = Mc::new(image.clone());
        ProcCacheSystem {
            image,
            cfg,
            endpoint: McEndpoint::direct(mc),
            chaos: None,
        }
    }

    /// System with an explicit endpoint (remote MC).
    pub fn with_endpoint(image: Image, cfg: ProcConfig, endpoint: McEndpoint) -> ProcCacheSystem {
        ProcCacheSystem {
            image,
            cfg,
            endpoint,
            chaos: None,
        }
    }

    /// Run under a seeded memory-fault plan: scheduled bit flips land in
    /// resident procedures and redirector words, and trap-entry seal
    /// verification is armed. Architectural output must match a clean run.
    pub fn run_chaos(
        &mut self,
        input: &[u8],
        plan: MemFaultPlan,
    ) -> Result<ProcRunOutput, CacheError> {
        self.chaos = Some(plan);
        let out = self.run(input);
        self.chaos = None;
        out
    }

    /// Run the program from a cold cache.
    pub fn run(&mut self, input: &[u8]) -> Result<ProcRunOutput, CacheError> {
        let mut machine = Machine::load_client(&self.image, input);
        machine.set_superblocks_enabled(self.cfg.superblocks);
        let mut cc = ProcCc::new(self.cfg);
        self.endpoint.set_policy(self.cfg.link_policy);
        let mut injector = self.chaos.map(MemFaultInjector::new);
        if injector.is_some() {
            cc.arm_integrity();
        }
        let entry = cc.ensure(&mut machine, &mut self.endpoint, self.image.entry)?;
        machine.cpu.pc = entry;
        let fuel = self.cfg.fuel;
        let exit_code = loop {
            if machine.stats.instructions >= fuel {
                return Err(CacheError::OutOfFuel);
            }
            let batch = (fuel - machine.stats.instructions).min(Machine::BLOCK_STEPS);
            match machine.run_block(batch)? {
                Step::Running => {}
                Step::Exited(code) => break code,
                Step::Trapped(Trap::Miss { idx, .. }) => {
                    cc.handle_miss(&mut machine, &mut self.endpoint, idx)?;
                }
                Step::Trapped(t) => {
                    // jrh/jalrh cannot occur: the MC refuses indirect jumps
                    // at rewrite time.
                    unreachable!("unexpected trap {t:?} in procedure cache");
                }
            }
            // Fault-injection checkpoint: flips land and are healed here,
            // before the guest resumes — corrupted code never executes.
            if let Some(inj) = injector.as_mut() {
                cc.chaos_tick(&mut machine, &mut self.endpoint, inj)?;
            }
        };
        Ok(ProcRunOutput {
            exit_code,
            output: machine.env.output.clone(),
            cache: cc.stats,
            exec: machine.stats,
            trace: machine.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcache_minic as minic;

    fn compile(src: &str) -> Image {
        minic::compile_to_image(
            src,
            &minic::Options {
                jump_tables: false, // the ARM prototype has no indirect jumps
            },
        )
        .unwrap()
    }

    fn native_result(image: &Image, input: &[u8]) -> (i32, Vec<u8>) {
        let mut m = softcache_sim::Machine::load_native(image, input);
        let code = m.run_native(100_000_000).unwrap();
        (code, m.env.output.clone())
    }

    const CALC: &str = r#"
int square(int x) { return x * x; }
int cube(int x) { return x * square(x); }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i = i + 1) s = s + cube(i) - square(i);
    return s % 1000;
}
"#;

    #[test]
    fn runs_correctly_with_ample_memory() {
        let image = compile(CALC);
        let (want, _) = native_result(&image, &[]);
        let out = ProcCacheSystem::new(image, ProcConfig::default())
            .run(&[])
            .unwrap();
        assert_eq!(out.exit_code, want);
        assert_eq!(out.cache.evictions, 0, "everything fits");
        assert!(out.cache.fetches >= 4, "crt0 + main + square + cube");
        assert!(out.cache.redirectors >= 3);
    }

    #[test]
    fn small_memory_pages_but_stays_correct() {
        let image = compile(CALC);
        let (want, _) = native_result(&image, &[]);
        // Find a memory size that forces eviction: total code size minus a
        // bit.
        let total: u32 = image.text_bytes();
        let cfg = ProcConfig {
            memory_bytes: total * 2 / 3,
            ..ProcConfig::default()
        };
        let out = ProcCacheSystem::new(image, cfg).run(&[]).unwrap();
        assert_eq!(out.exit_code, want, "eviction must preserve semantics");
        assert!(out.cache.evictions > 0, "memory was insufficient");
        assert_eq!(
            out.cache.evictions as usize,
            out.cache.eviction_cycles.len()
        );
    }

    #[test]
    fn eviction_of_running_caller_recovers_on_return() {
        // Deep call chain with a tiny memory: the caller is routinely
        // evicted while the callee runs; returns re-fetch through the
        // redirector's continuation miss.
        let src = r#"
int leaf(int x) { return x + 1; }
int mid(int x) { int a; a = leaf(x) + leaf(x + 1); return a; }
int outer(int x) { int b; b = mid(x) * 2 + mid(x + 2); return b; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i = i + 1) s = s + outer(i);
    return s;
}
"#;
        let image = compile(src);
        let (want, _) = native_result(&image, &[]);
        // Memory holds the biggest function plus redirectors but not the
        // whole program, so callers get evicted while callees run.
        let biggest = image.functions().iter().map(|f| f.size).max().unwrap();
        let total = image.text_bytes();
        let cfg = ProcConfig {
            memory_bytes: (biggest + 256).min(total - 64),
            ..ProcConfig::default()
        };
        let out = ProcCacheSystem::new(image, cfg).run(&[]).unwrap();
        assert_eq!(out.exit_code, want);
        assert!(out.cache.evictions > 0);
    }

    #[test]
    fn steady_state_stops_paging_when_hot_set_fits() {
        // Phase behaviour: a hot loop over two functions, then a cold
        // epilogue. With memory that fits the hot set, evictions happen
        // only around phase transitions — the Figure 8 "steady state zero"
        // observation.
        let src = r#"
int hot1(int x) { return x * 3 + 1; }
int hot2(int x) { return x / 2; }
int coldtail(int x) { puti(x); return 0; }
int main() {
    int i; int v;
    v = 7;
    for (i = 0; i < 300; i = i + 1) {
        if (v % 2) v = hot1(v); else v = hot2(v);
        if (v <= 1) v = i + 3;
    }
    coldtail(v);
    return v;
}
"#;
        let image = compile(src);
        let (want, wout) = native_result(&image, &[]);
        let hot_size: u32 = image
            .functions()
            .iter()
            .filter(|f| f.name != "coldtail")
            .map(|f| f.size)
            .sum();
        let cfg = ProcConfig {
            memory_bytes: hot_size + 768, // hot set + redirectors
            ..ProcConfig::default()
        };
        let out = ProcCacheSystem::new(image, cfg).run(&[]).unwrap();
        assert_eq!(out.exit_code, want);
        assert_eq!(out.output, wout);
        // Paging is bounded: transitions only, not per iteration.
        assert!(
            out.cache.evictions < 20,
            "evictions {} should reflect phase changes, not thrash",
            out.cache.evictions
        );
    }

    #[test]
    fn indirect_jumps_rejected() {
        let src = r#"
int f(int n) {
    switch (n) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 3;
        case 3: return 4;
        case 4: return 5;
        default: return 0;
    }
}
int main() { return f(getc()); }
"#;
        // Compiled WITH jump tables → contains jr → the ARM-style MC
        // must refuse.
        let image = minic::compile_to_image(src, &minic::Options { jump_tables: true }).unwrap();
        let err = ProcCacheSystem::new(image, ProcConfig::default())
            .run(b"\x02")
            .unwrap_err();
        assert!(matches!(err, CacheError::Mc(c) if c == errcode::UNSUPPORTED_IN_PROC));
    }

    #[test]
    fn too_small_memory_reports_chunk_too_big() {
        let image = compile("int main() { return 5; }");
        let cfg = ProcConfig {
            memory_bytes: 16,
            ..ProcConfig::default()
        };
        let err = ProcCacheSystem::new(image, cfg).run(&[]).unwrap_err();
        assert!(matches!(err, CacheError::ChunkTooBig { .. }));
    }

    #[test]
    fn heap_alloc_free_coalesce() {
        let mut h = Heap::new(0, 64);
        // Pinned stubs carve from the top.
        let p1 = h.carve_pinned_top().unwrap();
        let p2 = h.carve_pinned_top().unwrap();
        assert_eq!((p1, p2), (56, 48));
        let b = h.carve(
            h.find_free(16).unwrap(),
            16,
            RegionKind::Proc {
                func: 1,
                last_use: 1,
            },
        );
        let c = h.carve(
            h.find_free(32).unwrap(),
            32,
            RegionKind::Proc {
                func: 2,
                last_use: 2,
            },
        );
        assert_eq!((b, c), (0, 16));
        assert!(h.find_free(8).is_none(), "full");
        assert!(h.carve_pinned_top().is_none(), "no free tail");
        // Free the first proc.
        let idx = h.region_of_func(1).unwrap();
        h.release(idx);
        assert!(h.find_free(16).is_some());
        // Free the second proc; 16 + 32 coalesce into 48.
        let idx = h.region_of_func(2).unwrap();
        h.release(idx);
        assert!(h.find_free(48).is_some());
        // LRU picks the oldest.
        let f = h.find_free(48).unwrap();
        h.carve(
            f,
            24,
            RegionKind::Proc {
                func: 3,
                last_use: 5,
            },
        );
        let f = h.find_free(24).unwrap();
        h.carve(
            f,
            24,
            RegionKind::Proc {
                func: 4,
                last_use: 4,
            },
        );
        let lru = h.lru_proc().unwrap();
        assert!(matches!(
            h.regions[lru].kind,
            RegionKind::Proc { func: 4, .. }
        ));
    }

    #[test]
    fn trrip_victim_prefers_cold_low_heat_procs() {
        let mut cc = ProcCc::new(ProcConfig::default());
        for (func, last_use) in [(0x100, 1), (0x200, 2), (0x300, 3)] {
            let idx = cc.heap.find_free(16).unwrap();
            cc.heap.carve(idx, 16, RegionKind::Proc { func, last_use });
        }
        // 0x100 is entered constantly; the others installed and idled.
        cc.rrpv.insert(0x100, PROC_RRPV_HOT);
        cc.heat.insert(0x100, 50);
        cc.rrpv.insert(0x200, PROC_RRPV_FRESH);
        cc.heat.insert(0x200, 3);
        cc.rrpv.insert(0x300, PROC_RRPV_FRESH);
        cc.heat.insert(0x300, 1);
        // Max RRPV is FRESH (2), so everyone ages by 1; the victim is the
        // distant proc with the least lifetime heat — NOT the LRU (0x100).
        let v = cc.pick_victim().unwrap();
        assert!(matches!(
            cc.heap.regions[v].kind,
            RegionKind::Proc { func: 0x300, .. }
        ));
        assert_eq!(cc.rrpv[&0x100], PROC_RRPV_HOT + 1);
        assert_eq!(cc.rrpv[&0x200], PROC_RRPV_MAX);
        // Recency still breaks exact (rrpv, heat) ties.
        cc.heat.insert(0x300, 3);
        let v = cc.pick_victim().unwrap();
        assert!(matches!(
            cc.heap.regions[v].kind,
            RegionKind::Proc { func: 0x200, .. }
        ));
    }
}
