//! The complete software instruction cache system (§2 of the paper):
//! embedded machine + cache controller + memory controller, wired together.
//!
//! [`SoftIcacheSystem`] is the top-level object: give it a program image
//! and a configuration, call [`SoftIcacheSystem::run`], and the program
//! executes entirely out of the translation cache — original text never
//! enters client memory.

use crate::cc::{CacheError, Cc, IcacheConfig, IcacheStats};
use crate::endpoint::McEndpoint;
use crate::integrity::{MemFaultInjector, MemFaultPlan};
use crate::mc::Mc;
use crate::power::{strongarm, BankConfig, BankModel};
use softcache_isa::Image;
use softcache_sim::{ExecStats, Machine, Step, TraceStats, Trap};

/// Result of one softcache run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Program exit code.
    pub exit_code: i32,
    /// Bytes the program wrote.
    pub output: Vec<u8>,
    /// Cache-controller statistics.
    pub cache: IcacheStats,
    /// CPU execution statistics (cycles include miss service).
    pub exec: ExecStats,
    /// Superblock-engine telemetry (trace entries, chain breaks by
    /// terminator kind, IC/RAS hits). Host-side only: *not* part of the
    /// bit-identity contract the `exec`/`cache` ledgers carry.
    pub trace: TraceStats,
}

impl RunOutput {
    /// The paper's software miss-rate metric (Figure 7): "the number of
    /// basic blocks translated divided by the number of instructions
    /// executed", in percent.
    pub fn tcache_miss_rate_percent(&self) -> f64 {
        if self.exec.instructions == 0 {
            return 0.0;
        }
        self.cache.translations as f64 / self.exec.instructions as f64 * 100.0
    }
}

/// A software instruction cache system over a given image.
///
/// This is the basic-block-granularity SPARC prototype of §2.1; the
/// procedure-granularity ARM prototype with eviction lives in
/// [`crate::proc::ProcCacheSystem`].
pub struct SoftIcacheSystem {
    image: Image,
    cfg: IcacheConfig,
    endpoint: McEndpoint,
    last_power: Option<PowerReport>,
    /// Active memory-fault plan for [`SoftIcacheSystem::run_chaos`].
    chaos: Option<MemFaultPlan>,
}

impl SoftIcacheSystem {
    /// Fused system: MC and CC in one process (the SPARC prototype shape).
    pub fn new(image: Image, cfg: IcacheConfig) -> SoftIcacheSystem {
        let mc = Mc::new(image.clone());
        SoftIcacheSystem {
            image,
            cfg,
            endpoint: McEndpoint::direct(mc),
            last_power: None,
            chaos: None,
        }
    }

    /// System with an explicit endpoint (e.g. a remote MC on another
    /// thread). The image is still needed locally for its *data* segment —
    /// only text stays on the server.
    pub fn with_endpoint(
        image: Image,
        cfg: IcacheConfig,
        endpoint: McEndpoint,
    ) -> SoftIcacheSystem {
        SoftIcacheSystem {
            image,
            cfg,
            endpoint,
            last_power: None,
            chaos: None,
        }
    }

    /// Access the fused MC's statistics (None when remote).
    pub fn mc_stats(&self) -> Option<crate::mc::McStats> {
        self.endpoint.mc().map(|m| m.stats)
    }

    /// Select the chunk-formation strategy on the fused MC (builder
    /// style). Panics on a remote endpoint — configure the remote MC
    /// directly in that case.
    pub fn chunk_strategy(mut self, strategy: crate::mc::ChunkStrategy) -> SoftIcacheSystem {
        match &mut self.endpoint {
            McEndpoint::Direct(mc) => mc.set_strategy(strategy),
            McEndpoint::Remote { .. } => {
                panic!("configure the remote MC's strategy on the server side")
            }
        }
        self
    }

    /// Run the program under the software cache. Each call starts from a
    /// cold tcache.
    pub fn run(&mut self, input: &[u8]) -> Result<RunOutput, CacheError> {
        self.run_with_hook(input, |_, _| {})
    }

    /// Run under a seeded memory-fault plan: at every dispatch-loop
    /// checkpoint the injector may flip bits in installed tcache code or
    /// redirector words (through the code-write barrier, modelling
    /// corrupted SRAM refetch), after which the CC scrubs and heals
    /// *before* the guest resumes — so no corrupted instruction retires.
    /// Trap-entry seal verification is armed as defense-in-depth. The
    /// ledger lands in `RunOutput::cache.integrity`.
    pub fn run_chaos(&mut self, input: &[u8], plan: MemFaultPlan) -> Result<RunOutput, CacheError> {
        self.chaos = Some(plan);
        let out = self.run_inner(input, None, None, |_, _| {});
        self.chaos = None;
        out
    }

    /// Like [`SoftIcacheSystem::run`], but stops cleanly once
    /// `max_instructions` have retired, returning the statistics gathered
    /// so far (`exit_code` is 0 for a capped run). Miss rates converge
    /// quickly, so bounded runs are how the sweep experiments keep
    /// thrashing configurations tractable.
    pub fn run_measured(
        &mut self,
        input: &[u8],
        max_instructions: u64,
    ) -> Result<RunOutput, CacheError> {
        self.run_inner(input, None, Some(max_instructions), |_, _| {})
    }

    /// Run with a banked-SRAM power model attached (§4): chunk installs
    /// and flushes drive bank occupancy; every fetch is accounted. Returns
    /// the run output plus the power report.
    pub fn run_with_power(
        &mut self,
        input: &[u8],
        banks: BankConfig,
    ) -> Result<(RunOutput, PowerReport), CacheError> {
        let out = self.run_inner(input, Some(banks), None, |_, _| {})?;
        let report = self
            .last_power
            .take()
            .expect("power model attached for this run");
        Ok((out, report))
    }

    /// Like [`SoftIcacheSystem::run`], with a callback invoked after every
    /// serviced miss: `hook(cycles_so_far, translations_so_far)`. Drives
    /// the paging-over-time experiments.
    pub fn run_with_hook(
        &mut self,
        input: &[u8],
        hook: impl FnMut(u64, u64),
    ) -> Result<RunOutput, CacheError> {
        self.run_inner(input, None, None, hook)
    }

    fn run_inner(
        &mut self,
        input: &[u8],
        banks: Option<BankConfig>,
        cap: Option<u64>,
        mut hook: impl FnMut(u64, u64),
    ) -> Result<RunOutput, CacheError> {
        let mut machine = Machine::load_client(&self.image, input);
        machine.set_superblocks_enabled(self.cfg.superblocks);
        machine.set_chaining_enabled(self.cfg.chaining);
        machine.set_indirect_ic_enabled(self.cfg.indirect_ic);
        machine.set_ras_depth(self.cfg.ras_depth);
        machine.set_threaded_enabled(self.cfg.threaded);
        machine.set_threaded_threshold(self.cfg.threaded_threshold);
        let mut cc = Cc::new(self.cfg);
        self.endpoint.set_policy(self.cfg.link_policy);
        let track_power = banks.is_some();
        if let Some(bcfg) = banks {
            cc.attach_power(BankModel::new(bcfg));
        }
        let mut injector = self.chaos.map(MemFaultInjector::new);
        if injector.is_some() {
            cc.arm_integrity();
        }
        let entry = cc.ensure(&mut machine, &mut self.endpoint, self.image.entry)?;
        machine.cpu.pc = entry;

        let fuel = self.cfg.fuel;
        let limit = fuel.min(cap.unwrap_or(u64::MAX));
        let exit_code = loop {
            if machine.stats.instructions >= limit {
                if cap.is_some_and(|c| machine.stats.instructions >= c) {
                    break 0;
                }
                return Err(CacheError::OutOfFuel);
            }
            // The power model needs every fetch PC, so it keeps the
            // per-step loop; otherwise whole blocks run between checks.
            let step = if track_power {
                cc.power_access(machine.cpu.pc, machine.stats.cycles);
                machine.step()?
            } else {
                let batch = (limit - machine.stats.instructions).min(Machine::BLOCK_STEPS);
                machine.run_block(batch)?
            };
            match step {
                Step::Running => {}
                Step::Exited(code) => break code,
                Step::Trapped(Trap::Miss { idx, .. }) => {
                    cc.handle_miss(&mut machine, &mut self.endpoint, idx)?;
                    hook(machine.stats.cycles, cc.stats.translations);
                }
                Step::Trapped(Trap::HashJump { target, .. })
                | Step::Trapped(Trap::HashCall { target, .. }) => {
                    let tc = cc.hash_jump(&mut machine, &mut self.endpoint, target)?;
                    machine.cpu.pc = tc;
                    hook(machine.stats.cycles, cc.stats.translations);
                }
                Step::Trapped(Trap::Ecall { .. }) => unreachable!("handled by Machine"),
            }
            // Fault-injection checkpoint: flips land and are healed here,
            // before the guest resumes — corrupted code never executes.
            if let Some(inj) = injector.as_mut() {
                cc.chaos_tick(&mut machine, &mut self.endpoint, inj)?;
            }
        };
        cc.finalize_prefetch();
        if let Some(p) = cc.power() {
            let clock = machine.cost.clock_hz as f64;
            self.last_power = Some(PowerReport {
                mean_awake_banks: p.mean_awake_banks(),
                total_banks: p.config().banks,
                energy_mj: p.energy_mj(clock),
                hardware_baseline_mj: p.hardware_baseline_mj(clock, 0.15),
            });
        }
        Ok(RunOutput {
            exit_code,
            output: machine.env.output.clone(),
            cache: cc.stats,
            exec: machine.stats,
            trace: machine.trace,
        })
    }
}

/// Power summary from [`SoftIcacheSystem::run_with_power`].
#[derive(Clone, Copy, Debug)]
pub struct PowerReport {
    /// Time-weighted average of awake banks.
    pub mean_awake_banks: f64,
    /// Total banks in the region.
    pub total_banks: u32,
    /// Estimated softcache memory energy (leakage of awake banks +
    /// per-access dynamic energy), in millijoules.
    pub energy_mj: f64,
    /// Energy of an always-on hardware cache of the same geometry with a
    /// 15 % tag-access overhead, in millijoules.
    pub hardware_baseline_mj: f64,
}

impl PowerReport {
    /// Fraction of the hardware baseline saved by bank gating.
    pub fn savings_fraction(&self) -> f64 {
        1.0 - self.energy_mj / self.hardware_baseline_mj
    }

    /// Scale the memory-energy savings to whole-chip power using the
    /// paper's StrongARM breakdown (caches = 45 % of chip power).
    pub fn chip_power_savings_fraction(&self) -> f64 {
        self.savings_fraction() * strongarm::TOTAL_CACHE_FRACTION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CacheError;
    use softcache_asm::assemble;
    use softcache_minic as minic;
    use softcache_net::thread_pair;
    use std::time::Duration;

    fn run_asm(src: &str, cfg: IcacheConfig, input: &[u8]) -> RunOutput {
        let image = assemble(src).unwrap();
        SoftIcacheSystem::new(image, cfg)
            .run(input)
            .expect("softcache run")
    }

    fn run_minic(src: &str, cfg: IcacheConfig, input: &[u8]) -> RunOutput {
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        SoftIcacheSystem::new(image, cfg)
            .run(input)
            .expect("softcache run")
    }

    #[test]
    fn straight_line_program() {
        let out = run_asm(
            "_start: li a0, 7\n addi a0, a0, 35\n ecall 0",
            IcacheConfig::default(),
            &[],
        );
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.cache.translations, 1, "one block");
    }

    #[test]
    fn loop_runs_with_zero_checks_after_warmup() {
        // After the loop's blocks are translated and patched, iterations
        // execute with no traps at all: translations stays at the number of
        // distinct blocks regardless of trip count.
        let src = r#"
_start: li t0, 1000
.Ll:    addi t0, t0, -1
        bnez t0, .Ll
        li a0, 0
        ecall 0
"#;
        let out = run_asm(src, IcacheConfig::default(), &[]);
        assert_eq!(out.exit_code, 0);
        assert_eq!(out.cache.translations, 3);
        assert_eq!(out.cache.miss_traps, 2, "fall-through misses only");
        assert_eq!(out.cache.flushes, 0);
    }

    #[test]
    fn guaranteed_hit_rate_when_working_set_fits() {
        // The paper's guarantee: a module that fits in the (fully
        // associative) tcache suffers no misses once translated. Run two
        // passes; all translation happens in pass one.
        let src = r#"
int work() {
    int i; int s;
    s = 0;
    for (i = 0; i < 50; i = i + 1) s = s + i * 3 % 7;
    return s;
}
int main() {
    int a; int b;
    a = work();
    b = work();
    return a == b;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut sys = SoftIcacheSystem::new(image.clone(), IcacheConfig::default());
        let out = sys.run(&[]).unwrap();
        assert_eq!(out.exit_code, 1);
        assert_eq!(out.cache.flushes, 0);
        // Translations are bounded by distinct blocks, far below the
        // dynamic block count.
        assert!(out.cache.translations < 60);

        // Independent check: a run of main calling work() once translates
        // the same number of work()-blocks; the second call added none.
        let single = r#"
int work() {
    int i; int s;
    s = 0;
    for (i = 0; i < 50; i = i + 1) s = s + i * 3 % 7;
    return s;
}
int main() {
    int a;
    a = work();
    return a == 1225 || 1;
}
"#;
        let image2 = minic::compile_to_image(single, &minic::Options::default()).unwrap();
        let mut sys2 = SoftIcacheSystem::new(image2, IcacheConfig::default());
        let out2 = sys2.run(&[]).unwrap();
        // Both runs translate the same work() blocks; the two-call run may
        // differ only in main's own blocks (a constant few).
        assert!(out.cache.translations.abs_diff(out2.cache.translations) <= 6);
    }

    #[test]
    fn output_matches_native_run() {
        let src = r#"
int tab[16];
int main() {
    int i;
    for (i = 0; i < 16; i = i + 1) tab[i] = i * i;
    for (i = 0; i < 16; i = i + 1) { puti(tab[i]); putc(' '); }
    return tab[15];
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut native = softcache_sim::Machine::load_native(&image, &[]);
        let native_code = native.run_native(10_000_000).unwrap();

        let out = run_minic(src, IcacheConfig::default(), &[]);
        assert_eq!(out.exit_code, native_code);
        assert_eq!(out.output, native.env.output);
    }

    #[test]
    fn superblock_engine_is_bit_identical_at_system_level() {
        // Same workload, same config, superblock micro-op engine on vs
        // off: every simulated observable (exit code, output, exec stats,
        // cache stats) must match bit for bit — the engine is host-side
        // speed only. The tight tcache forces evictions/flushes so
        // install-time eager predecode, backpatching and invalidation all
        // fire.
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int tab[32];
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 32; i = i + 1) { tab[i] = fib(i % 12); s = s + tab[i]; }
    for (i = 0; i < 32; i = i + 1) { puti(tab[i]); putc(' '); }
    return s % 251;
}
"#;
        for tcache_size in [2 * 1024, 48 * 1024] {
            let on = run_minic(
                src,
                IcacheConfig {
                    tcache_size,
                    ..IcacheConfig::default()
                },
                &[],
            );
            let off = run_minic(
                src,
                IcacheConfig {
                    tcache_size,
                    superblocks: false,
                    ..IcacheConfig::default()
                },
                &[],
            );
            assert_eq!(on.exit_code, off.exit_code, "tcache={tcache_size}");
            assert_eq!(on.output, off.output, "tcache={tcache_size}");
            assert_eq!(on.exec, off.exec, "tcache={tcache_size}");
            assert_eq!(on.cache, off.cache, "tcache={tcache_size}");
        }
    }

    #[test]
    fn chaining_is_bit_identical_at_system_level() {
        // Same workload, same config, superblock chaining on vs off:
        // every simulated observable must match bit for bit — links are
        // host-side speed only. The tight tcache forces evictions and
        // backpatch storms, so links form at install time
        // (`predecode_range` → `link_range`), sever on every generation
        // bump, and re-form lazily mid-run.
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int tab[32];
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 32; i = i + 1) { tab[i] = fib(i % 12); s = s + tab[i]; }
    for (i = 0; i < 32; i = i + 1) { puti(tab[i]); putc(' '); }
    return s % 251;
}
"#;
        for tcache_size in [2 * 1024, 48 * 1024] {
            let on = run_minic(
                src,
                IcacheConfig {
                    tcache_size,
                    ..IcacheConfig::default()
                },
                &[],
            );
            let off = run_minic(
                src,
                IcacheConfig {
                    tcache_size,
                    chaining: false,
                    ..IcacheConfig::default()
                },
                &[],
            );
            assert_eq!(on.exit_code, off.exit_code, "tcache={tcache_size}");
            assert_eq!(on.output, off.output, "tcache={tcache_size}");
            assert_eq!(on.exec, off.exec, "tcache={tcache_size}");
            assert_eq!(on.cache, off.cache, "tcache={tcache_size}");
        }
    }

    #[test]
    fn indirect_ic_and_ras_are_bit_identical_at_system_level() {
        // Same workload, same config, sweeping the indirect-branch inline
        // caches and RAS depth: every simulated observable must match bit
        // for bit — both are host-side dispatch only. Recursive fib keeps
        // the RAS busy (including overflow past shallow depths); the
        // tight tcache adds flushes and backpatch storms, exercising the
        // predictor-reset paths (`clear_ras` on flush/resync, generation
        // severing of cached indirect targets).
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int tab[32];
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 32; i = i + 1) { tab[i] = fib(i % 12); s = s + tab[i]; }
    for (i = 0; i < 32; i = i + 1) { puti(tab[i]); putc(' '); }
    return s % 251;
}
"#;
        for tcache_size in [2 * 1024, 48 * 1024] {
            let on = run_minic(
                src,
                IcacheConfig {
                    tcache_size,
                    ..IcacheConfig::default()
                },
                &[],
            );
            for (indirect_ic, ras_depth) in [(false, 0), (true, 0), (false, 16), (true, 1)] {
                let other = run_minic(
                    src,
                    IcacheConfig {
                        tcache_size,
                        indirect_ic,
                        ras_depth,
                        ..IcacheConfig::default()
                    },
                    &[],
                );
                let tag = format!("tcache={tcache_size} ic={indirect_ic} ras={ras_depth}");
                assert_eq!(on.exit_code, other.exit_code, "{tag}");
                assert_eq!(on.output, other.output, "{tag}");
                assert_eq!(on.exec, other.exec, "{tag}");
                assert_eq!(on.cache, other.cache, "{tag}");
            }
            // The telemetry (outside the bit-identity contract) shows the
            // predictors actually fired.
            assert!(on.trace.ras_hits > 0, "tcache={tcache_size}");
            assert_eq!(
                on.trace.entries,
                on.trace.breaks.total() + on.trace.code_write_exits + on.trace.fault_exits,
                "walk entries balance walk exits"
            );
        }
    }

    #[test]
    fn computed_jumps_through_hash_table() {
        // A dense switch compiles to a jump table → jr → jrh under the
        // softcache.
        let src = r#"
int f(int n) {
    switch (n) {
        case 0: return 5;
        case 1: return 6;
        case 2: return 7;
        case 3: return 8;
        case 4: return 9;
        default: return 0;
    }
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 40; i = i + 1) s = s + f(i % 6);
    return s;
}
"#;
        let out = run_minic(src, IcacheConfig::default(), &[]);
        // i % 6 == 5 takes the bounds-check branch to default without
        // reaching the jump table, so ~34 of 40 dispatches go through jr.
        assert!(out.cache.hash_traps >= 30, "every table dispatch traps");
        assert!(
            out.cache.hash_hits >= out.cache.hash_traps - 10,
            "steady state hits the map"
        );
        // Differential against native.
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut native = softcache_sim::Machine::load_native(&image, &[]);
        assert_eq!(out.exit_code, native.run_native(10_000_000).unwrap());
    }

    #[test]
    fn indirect_calls_and_returns() {
        let src = r#"
int dbl(int x) { return x * 2; }
int inc(int x) { return x + 1; }
int main() {
    int p; int i; int s;
    s = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i % 2) p = &dbl; else p = &inc;
        s = s + callptr(p, i);
    }
    return s;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut native = softcache_sim::Machine::load_native(&image, &[]);
        let want = native.run_native(10_000_000).unwrap();
        let out = run_minic(src, IcacheConfig::default(), &[]);
        assert_eq!(out.exit_code, want);
        assert!(out.cache.hash_traps >= 10, "jalrh per indirect call");
    }

    #[test]
    fn tiny_tcache_thrashes_but_completes() {
        // The paper's Figure 5 rightmost bar: "performance is awful but
        // the system continues to operate".
        let src = r#"
int a() { return 1; }
int b() { return 2; }
int c() { return 3; }
int d() { return 4; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i = i + 1) s = s + a() + b() + c() + d();
    return s;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let big = SoftIcacheSystem::new(image.clone(), IcacheConfig::default())
            .run(&[])
            .unwrap();
        let small_cfg = IcacheConfig {
            tcache_size: 384,
            // Pin the paper's flush-all baseline: this test is about the
            // fig5 cliff itself, not the eviction policy that flattens it.
            tcache_policy: crate::cc::TcachePolicy::FlushAll,
            ..IcacheConfig::default()
        };
        let small = SoftIcacheSystem::new(image, small_cfg).run(&[]).unwrap();
        assert_eq!(small.exit_code, big.exit_code, "correctness preserved");
        assert!(small.cache.flushes > 0, "must have flushed");
        assert!(
            small.cache.translations > big.cache.translations,
            "thrashing retranslates: {} vs {}",
            small.cache.translations,
            big.cache.translations
        );
        assert!(small.exec.cycles > big.exec.cycles);
    }

    #[test]
    fn trrip_evicts_chunks_instead_of_flushing() {
        // Same program and tcache size as the thrash test above, but under
        // the default TRRIP policy: pressure is served by per-chunk victim
        // eviction, the output stays correct, and the install ledger
        // balances exactly (translations = residents + evictions +
        // invalidations + flush losses).
        let src = r#"
int a() { return 1; }
int b() { return 2; }
int c() { return 3; }
int d() { return 4; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i = i + 1) s = s + a() + b() + c() + d();
    return s;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let big = SoftIcacheSystem::new(image.clone(), IcacheConfig::default())
            .run(&[])
            .unwrap();
        let small_cfg = IcacheConfig {
            tcache_size: 384,
            ..IcacheConfig::default()
        };
        assert_eq!(small_cfg.tcache_policy, crate::cc::TcachePolicy::Trrip);
        let small = SoftIcacheSystem::new(image, small_cfg).run(&[]).unwrap();
        assert_eq!(small.exit_code, big.exit_code, "correctness preserved");
        assert!(small.cache.evictions > 0, "pressure must evict victims");
        assert!(
            small.cache.install_ledger_balanced(),
            "every translation is resident, evicted, invalidated, or lost \
             to a flush: {:?}",
            small.cache
        );
        assert!(
            small.cache.evicted_hot + small.cache.evicted_warm + small.cache.evicted_cold
                == small.cache.evictions,
            "temperature histogram covers every eviction"
        );
    }

    #[test]
    fn trrip_escalates_to_flush_when_eviction_cannot_fit() {
        // Regression for the room-making retry: when the incoming chunk is
        // bigger than any hole eviction can open (fragmentation, pinned or
        // RA-live survivors), `make_room` must escalate to a compacting
        // flush and the program must still complete — and a chunk bigger
        // than the refetch budget after that final flush is a hard error,
        // not a livelock.
        let src = r#"
int pad1(int x) { return x + 1; }
int pad2(int x) { return x + 2; }
int big(int n) {
    int r;
    r = pad1(n) + pad2(n) + pad1(n + 1) + pad2(n + 2);
    r = r + pad1(r) + pad2(r) + pad1(r + 3) + pad2(r + 4);
    return r;
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 6; i = i + 1) s = s + big(i) + pad1(i);
    return s & 0xff;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut native = softcache_sim::Machine::load_native(&image, &[]);
        let want = native.run_native(10_000_000).unwrap();
        // Sweep down until eviction alone cannot serve every fill; the
        // escalation path must keep the run correct rather than erroring.
        let mut escalated = false;
        for size in [768u32, 640, 512, 448, 384, 320, 256] {
            let cfg = IcacheConfig {
                tcache_size: size,
                ..IcacheConfig::default()
            };
            match SoftIcacheSystem::new(image.clone(), cfg).run(&[]) {
                Ok(out) => {
                    assert_eq!(out.exit_code, want, "size {size}");
                    assert!(out.cache.install_ledger_balanced(), "size {size}");
                    escalated |= out.cache.evictions > 0 && out.cache.flushes > 0;
                }
                Err(CacheError::ChunkTooBig { .. }) => break,
                Err(e) => panic!("size {size}: {e}"),
            }
        }
        assert!(
            escalated,
            "no size in the sweep both evicted and escalated to a flush"
        );
    }

    #[test]
    fn chunk_too_big_is_reported_under_both_policies() {
        // One giant straight-line block larger than the tcache errors out
        // under flush-all and under TRRIP alike.
        let mut src = String::from("_start:\n");
        for i in 0..200 {
            src.push_str(&format!(" addi t0, t0, {}\n", i % 7));
        }
        src.push_str(" li a0, 0\n ecall 0\n");
        let image = assemble(&src).unwrap();
        for policy in [
            crate::cc::TcachePolicy::FlushAll,
            crate::cc::TcachePolicy::Trrip,
        ] {
            let cfg = IcacheConfig {
                tcache_size: 256,
                tcache_policy: policy,
                ..IcacheConfig::default()
            };
            let err = SoftIcacheSystem::new(image.clone(), cfg)
                .run(&[])
                .unwrap_err();
            assert!(
                matches!(err, CacheError::ChunkTooBig { .. }),
                "{policy:?}: {err}"
            );
        }
    }

    #[test]
    fn flush_mid_call_stack_fixes_return_addresses() {
        // Deep recursion with enough code that a tiny tcache flushes while
        // frames are live; returns must still land correctly.
        let src = r#"
int pad1(int x) { return x + 1; }
int pad2(int x) { return x + 2; }
int pad3(int x) { return x + 3; }
int deep(int n) {
    int r;
    if (n == 0) return pad1(0) + pad2(0) + pad3(0);
    r = deep(n - 1);
    return r + pad1(n) + pad2(n) - pad3(n);
}
int main() { return deep(6); }
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut native = softcache_sim::Machine::load_native(&image, &[]);
        let want = native.run_native(10_000_000).unwrap();

        let cfg = IcacheConfig {
            tcache_size: 600,
            // Flush-path hygiene test: keep the whole-cache flush in play.
            tcache_policy: crate::cc::TcachePolicy::FlushAll,
            ..IcacheConfig::default()
        };
        let out = SoftIcacheSystem::new(image, cfg).run(&[]).unwrap();
        assert_eq!(out.exit_code, want, "flush must not corrupt returns");
        assert!(out.cache.flushes > 0, "test requires at least one flush");
        assert!(out.cache.ra_redirects > 0, "stacked RAs were rewritten");
    }

    #[test]
    fn remote_mc_over_threads_end_to_end() {
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let (cc_t, mut mc_t) = thread_pair(Duration::from_millis(500));
        let server_image = image.clone();
        let server = std::thread::spawn(move || {
            let mut mc = Mc::new(server_image);
            crate::endpoint::serve(&mut mc, &mut mc_t);
        });
        let mut sys = SoftIcacheSystem::with_endpoint(
            image,
            IcacheConfig::default(),
            McEndpoint::remote(Box::new(cc_t)),
        );
        let out = sys.run(&[]).unwrap();
        assert_eq!(out.exit_code, 55);
        drop(sys);
        server.join().unwrap();
    }

    #[test]
    fn miss_rate_metric() {
        let src = "_start: li t0, 100\n.Ll: addi t0, t0, -1\n bnez t0, .Ll\n li a0, 0\n ecall 0";
        let out = run_asm(src, IcacheConfig::default(), &[]);
        let mr = out.tcache_miss_rate_percent();
        assert!(
            mr > 0.0 && mr < 5.0,
            "few translations over many instructions: {mr}"
        );
    }

    #[test]
    fn link_accounting_present() {
        let out = run_asm("_start: li a0, 1\n ecall 0", IcacheConfig::default(), &[]);
        assert!(out.cache.link.messages >= 2);
        assert_eq!(out.cache.link.overhead_per_rpc(), 60.0);
        assert!(out.cache.miss_cycles > 0);
    }

    #[test]
    fn out_of_fuel_detected() {
        let cfg = IcacheConfig {
            fuel: 1_000,
            ..IcacheConfig::default()
        };
        let image = assemble("_start: j _start").unwrap();
        let err = SoftIcacheSystem::new(image, cfg).run(&[]).unwrap_err();
        assert!(matches!(err, CacheError::OutOfFuel));
    }
}

#[cfg(test)]
mod power_tests {
    use super::*;
    use crate::power::BankConfig;
    use softcache_minic as minic;

    #[test]
    fn power_report_reflects_working_set() {
        // A small program occupies a couple of banks; the rest sleep.
        let src = r#"
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 3000; i = i + 1) s = (s + i * 7) % 1000;
    return s % 128;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let cfg = IcacheConfig {
            tcache_size: 32 * 1024,
            ..IcacheConfig::default()
        };
        let banks = BankConfig {
            bank_bytes: 1024,
            banks: 32,
            ..BankConfig::default()
        };
        let mut sys = SoftIcacheSystem::new(image, cfg);
        let (out, report) = sys.run_with_power(&[], banks).unwrap();
        assert!(out.exit_code >= 0);
        assert!(
            report.mean_awake_banks < 3.0,
            "small working set awakes few banks: {}",
            report.mean_awake_banks
        );
        assert!(report.energy_mj < report.hardware_baseline_mj);
        assert!(
            report.savings_fraction() > 0.5,
            "{}",
            report.savings_fraction()
        );
        let chip = report.chip_power_savings_fraction();
        assert!(chip > 0.2 && chip < 0.45, "chip-level savings {chip}");
    }

    #[test]
    fn power_run_keeps_semantics() {
        let src = "int main() { return 37; }";
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let mut sys = SoftIcacheSystem::new(image, IcacheConfig::default());
        let (out, _) = sys.run_with_power(&[], BankConfig::default()).unwrap();
        assert_eq!(out.exit_code, 37);
    }
}

#[cfg(test)]
mod superblock_tests {
    use super::*;
    use crate::mc::ChunkStrategy;
    use softcache_minic as minic;

    const PROGRAM: &str = r#"
int work(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) s = s + i;
        else if (i % 3 == 1) s = s - i;
        else s = s ^ i;
    }
    return s;
}
int main() { return work(500) & 0x7f; }
"#;

    fn run_with(strategy: ChunkStrategy) -> RunOutput {
        let image = minic::compile_to_image(PROGRAM, &minic::Options::default()).unwrap();
        SoftIcacheSystem::new(image, IcacheConfig::default())
            .chunk_strategy(strategy)
            .run(&[])
            .unwrap()
    }

    #[test]
    fn superblocks_preserve_semantics() {
        let block = run_with(ChunkStrategy::BasicBlock);
        for max in [2, 4, 16] {
            let sb = run_with(ChunkStrategy::Superblock { max_blocks: max });
            assert_eq!(sb.exit_code, block.exit_code, "max={max}");
            assert_eq!(sb.output, block.output, "max={max}");
        }
    }

    #[test]
    fn superblocks_reduce_round_trips() {
        let block = run_with(ChunkStrategy::BasicBlock);
        let sb = run_with(ChunkStrategy::Superblock { max_blocks: 8 });
        assert!(
            sb.cache.translations < block.cache.translations,
            "fewer chunks: {} vs {}",
            sb.cache.translations,
            block.cache.translations
        );
        assert!(
            sb.cache.miss_traps <= block.cache.miss_traps,
            "inlined fallthroughs eliminate fall-slot misses"
        );
    }

    #[test]
    fn superblock_of_one_is_basic_block() {
        let block = run_with(ChunkStrategy::BasicBlock);
        let sb1 = run_with(ChunkStrategy::Superblock { max_blocks: 1 });
        assert_eq!(block.cache.translations, sb1.cache.translations);
        assert_eq!(block.cache.words_installed, sb1.cache.words_installed);
    }

    #[test]
    fn superblocks_work_under_flush_pressure() {
        let image = minic::compile_to_image(PROGRAM, &minic::Options::default()).unwrap();
        let want = run_with(ChunkStrategy::BasicBlock).exit_code;
        // Find a tcache size that forces at least one flush under the
        // superblock strategy, then verify semantics survive it.
        let mut flushed = false;
        for size in [768u32, 640, 512, 448, 384] {
            let cfg = IcacheConfig {
                tcache_size: size,
                // Flush-path hygiene test: keep the whole-cache flush.
                tcache_policy: crate::cc::TcachePolicy::FlushAll,
                ..IcacheConfig::default()
            };
            match SoftIcacheSystem::new(image.clone(), cfg)
                .chunk_strategy(ChunkStrategy::Superblock { max_blocks: 4 })
                .run(&[])
            {
                Ok(out) => {
                    assert_eq!(out.exit_code, want, "size {size}");
                    flushed |= out.cache.flushes > 0;
                }
                Err(CacheError::ChunkTooBig { .. }) => break,
                Err(e) => panic!("size {size}: {e}"),
            }
        }
        assert!(flushed, "no size in the sweep flushed");
    }

    #[test]
    fn superblocks_with_calls_inline_continuations() {
        let src = r#"
int f(int x) { return x + 1; }
int main() {
    int s; int i;
    s = 0;
    for (i = 0; i < 50; i = i + 1) s = s + f(i) + f(s & 7);
    return s & 0x7f;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let base = SoftIcacheSystem::new(image.clone(), IcacheConfig::default())
            .run(&[])
            .unwrap();
        let sb = SoftIcacheSystem::new(image, IcacheConfig::default())
            .chunk_strategy(ChunkStrategy::Superblock { max_blocks: 8 })
            .run(&[])
            .unwrap();
        assert_eq!(sb.exit_code, base.exit_code);
        assert!(sb.cache.translations < base.cache.translations);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use softcache_minic as minic;
    use softcache_net::thread_pair;
    use std::time::Duration;

    const PROGRAM: &str = r#"
int f(int x) { if (x % 2) return x * 3; return x + 1; }
int g(int x) { if (x > 100) return x - 100; return x; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 200; i = i + 1) s = g(s + f(i));
    return s & 0x7f;
}
"#;

    fn run_depth(depth: u32) -> RunOutput {
        let image = minic::compile_to_image(PROGRAM, &minic::Options::default()).unwrap();
        let cfg = IcacheConfig {
            prefetch_depth: depth,
            ..IcacheConfig::default()
        };
        SoftIcacheSystem::new(image, cfg).run(&[]).unwrap()
    }

    #[test]
    fn speculative_push_preserves_semantics() {
        let base = run_depth(0);
        assert_eq!(base.cache.link.batches, 0, "depth 0 never batches");
        assert_eq!(base.cache.link.prefetched_chunks, 0);
        for depth in [1, 2, 4, 8] {
            let out = run_depth(depth);
            assert_eq!(out.exit_code, base.exit_code, "depth {depth}");
            assert_eq!(out.output, base.output, "depth {depth}");
            // Zero tag checks preserved: speculation never adds executed
            // instructions. It can *remove* a few one-shot `miss` stub
            // executions — when a later demand chunk is resolved straight
            // into a pushed chunk, that edge never traps — so the count
            // may drop by at most one per such resolved prefetch hit.
            assert!(
                out.exec.instructions <= base.exec.instructions,
                "depth {depth}"
            );
            assert!(
                base.exec.instructions - out.exec.instructions <= out.cache.link.prefetch_hits,
                "depth {depth}: {} vs {}",
                base.exec.instructions,
                out.exec.instructions
            );
        }
    }

    #[test]
    fn batching_cuts_exchanges_and_balances_the_ledger() {
        let base = run_depth(0);
        let out = run_depth(4);
        assert!(
            out.cache.link.messages < base.cache.link.messages,
            "pushed chunks need no exchange of their own: {} vs {}",
            out.cache.link.messages,
            base.cache.link.messages
        );
        assert!(out.cache.link.stall_cycles < base.cache.link.stall_cycles);
        assert!(out.cache.link.batches > 0);
        assert!(out.cache.link.prefetched_chunks > 0);
        assert!(out.cache.link.prefetch_hits > 0, "speculation pays off");
        assert_eq!(
            out.cache.link.prefetch_hits + out.cache.link.prefetch_wastes,
            out.cache.link.prefetched_chunks,
            "every pushed chunk settles as hit or waste"
        );
        assert_eq!(
            out.cache.link.overhead_per_rpc(),
            60.0,
            "a batch still costs one header pair"
        );
        assert!(
            out.cache.translations >= base.cache.translations,
            "wasted pushes can only add translations"
        );
    }

    #[test]
    fn speculative_push_over_remote_mc() {
        let src = r#"
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let (cc_t, mut mc_t) = thread_pair(Duration::from_millis(500));
        let server_image = image.clone();
        let server = std::thread::spawn(move || {
            let mut mc = Mc::new(server_image);
            crate::endpoint::serve(&mut mc, &mut mc_t)
        });
        let cfg = IcacheConfig {
            prefetch_depth: 2,
            ..IcacheConfig::default()
        };
        let mut sys =
            SoftIcacheSystem::with_endpoint(image, cfg, McEndpoint::remote(Box::new(cc_t)));
        let out = sys.run(&[]).unwrap();
        assert_eq!(out.exit_code, 55);
        assert!(out.cache.link.batches > 0);
        drop(sys);
        server.join().unwrap();
    }
}

#[cfg(test)]
mod measured_tests {
    use super::*;
    use softcache_asm::assemble;

    #[test]
    fn run_measured_stops_at_cap_with_stats() {
        let image = assemble("_start: li t0, 0\n.Ll: addi t0, t0, 1\n j .Ll").unwrap();
        let mut sys = SoftIcacheSystem::new(image, IcacheConfig::default());
        let out = sys.run_measured(&[], 10_000).unwrap();
        assert_eq!(out.exit_code, 0, "capped runs report exit 0");
        assert!(out.exec.instructions >= 10_000);
        assert!(out.exec.instructions < 10_100, "stops promptly");
        assert!(out.cache.translations >= 2);
        assert!(out.tcache_miss_rate_percent() > 0.0);
    }

    #[test]
    fn run_measured_returns_early_exit() {
        let image = assemble("_start: li a0, 9\n ecall 0").unwrap();
        let mut sys = SoftIcacheSystem::new(image, IcacheConfig::default());
        let out = sys.run_measured(&[], 1_000_000).unwrap();
        assert_eq!(out.exit_code, 9, "program finished before the cap");
    }
}
