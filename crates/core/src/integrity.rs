//! Tcache integrity seals, seeded memory-fault injection, and the
//! self-healing ledger (DESIGN.md §13).
//!
//! The tcache lives in fault-prone on-chip SRAM: a flipped bit in an
//! installed chunk silently executes wrong code forever, because every
//! pointer into the tcache (patched branches, map entries, return
//! addresses) implicitly asserts the code under it is still what the MC
//! shipped. This module adds the missing trust anchor:
//!
//! * [`SealTable`] — one CRC-32 seal per installed span (chunk,
//!   trampoline, stub, redirector), computed from simulated memory at
//!   install/backpatch time and stored **in CC metadata**, not in
//!   simulated memory — the paper's memory-footprint figures are
//!   unchanged, exactly as for the tcache map itself.
//! * [`MemFaultPlan`] / [`MemFaultInjector`] — a seeded, deterministic
//!   SplitMix64 schedule of bit flips aimed at tcache code, redirector
//!   words and dcache lines: the memory-side mirror of the link layer's
//!   `FaultyTransport`. No `rand`, no wall clock; a given plan replays
//!   the identical flip schedule on every run.
//! * [`IntegrityStats`] — the self-healing ledger. Every violation is
//!   resolved by exactly one recovery action, so
//!   `violations == retranslations + slow_path_pins` always holds; CI
//!   gates on it.

use softcache_net::envelope::crc32;
use softcache_sim::Machine;
use std::collections::BTreeMap;

/// SplitMix64 — the same deterministic mixer the link-fault injector and
/// the vendored shims use (private there, so restated here).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Integrity/watchdog knobs, carried by the cache configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Verify the seal of the trap target at every miss/hash trap entry
    /// before redirecting the PC into it. Armed automatically whenever a
    /// fault plan is injected; off by default so clean-run figures and
    /// steady-state throughput are untouched (hash traps survive into
    /// steady state, and a CRC per dispatch is not free).
    pub verify_traps: bool,
    /// A chunk whose seal fails more than this many times is pinned to
    /// the slow-path interpreter instead of being retranslated again —
    /// graceful degradation, never a retranslate livelock.
    pub watchdog_threshold: u32,
}

impl Default for IntegrityConfig {
    fn default() -> IntegrityConfig {
        IntegrityConfig {
            verify_traps: false,
            watchdog_threshold: 3,
        }
    }
}

/// The self-healing ledger. All counters are host-side bookkeeping:
/// sealing and scrubbing charge zero simulated cycles (the model assumes
/// a background scrub engine; recovery itself reuses the ordinary miss
/// path, which is charged as usual).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Seal verifications performed.
    pub seals_checked: u64,
    /// Verifications that matched.
    pub seal_hits: u64,
    /// Seal mismatches detected (corrupted spans caught before use).
    pub violations: u64,
    /// Violations resolved by discarding the span for retranslation
    /// through the normal miss path, or by regenerating a redirector /
    /// stub word from CC metadata.
    pub retranslations: u64,
    /// Chunks quarantined: arena links severed, RAS cleared, map entry
    /// and records killed, decode/uop spans invalidated.
    pub quarantines: u64,
    /// Violations resolved by the watchdog pinning the chunk to the
    /// slow-path interpreter.
    pub slow_path_pins: u64,
    /// Bit flips injected into installed code spans.
    pub code_flips: u64,
    /// Bit flips injected into redirector / trampoline / stub words.
    pub redirector_flips: u64,
    /// Bit flips injected into clean dcache lines.
    pub dcache_flips: u64,
}

impl IntegrityStats {
    /// The recovery invariant: every detected violation was resolved by
    /// exactly one action. CI gates on this.
    pub fn balanced(&self) -> bool {
        self.violations == self.retranslations + self.slow_path_pins
    }
}

/// A deterministic schedule of memory faults. Rates are per-mille per
/// checkpoint (one checkpoint per dispatch-loop iteration); the window is
/// expressed in checkpoint indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFaultPlan {
    /// Seed of the flip schedule.
    pub seed: u64,
    /// Chance (‰) of flipping one random bit of an installed code chunk.
    pub code_per_mille: u32,
    /// Chance (‰) of flipping one random bit of a redirector, trampoline
    /// or stub word.
    pub redirector_per_mille: u32,
    /// Chance (‰) of flipping one random bit of a clean dcache line.
    pub dcache_per_mille: u32,
    /// Half-open window `[start, end)` of checkpoint indices outside
    /// which nothing fires — a burst of corruption rather than a steady
    /// drizzle. `None` means the rates apply for the whole run.
    pub window: Option<(u64, u64)>,
    /// Aim every code flip at the chunk translated from this original
    /// address (if resident) — the repeated-corruption case the watchdog
    /// exists for.
    pub stuck_orig: Option<u32>,
}

impl MemFaultPlan {
    /// A plan that injects nothing (baseline).
    pub fn clean(seed: u64) -> MemFaultPlan {
        MemFaultPlan {
            seed,
            code_per_mille: 0,
            redirector_per_mille: 0,
            dcache_per_mille: 0,
            window: None,
            stuck_orig: None,
        }
    }
}

/// Which fault kinds fire at one checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickFire {
    /// Flip a bit in an installed code chunk.
    pub code: bool,
    /// Flip a bit in a redirector / trampoline / stub word.
    pub redirector: bool,
    /// Flip a bit in a clean dcache line.
    pub dcache: bool,
}

impl TickFire {
    /// Did anything fire?
    pub fn any(&self) -> bool {
        self.code || self.redirector || self.dcache
    }
}

/// Seeded memory-fault injector: decides *when* a flip lands; the cache
/// controllers decide *where*, using [`MemFaultInjector::pick`] for the
/// word and bit choices so the whole schedule is a pure function of the
/// seed and the checkpoint sequence.
pub struct MemFaultInjector {
    /// The schedule being executed.
    pub plan: MemFaultPlan,
    rng: u64,
    ticks: u64,
}

impl MemFaultInjector {
    /// Fresh injector for `plan`.
    pub fn new(plan: MemFaultPlan) -> MemFaultInjector {
        MemFaultInjector {
            plan,
            rng: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
            ticks: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = mix64(self.rng);
        self.rng
    }

    /// Roll one fault decision. Always consumes one random number so the
    /// schedule stays aligned across plans that share a seed.
    fn roll(&mut self, per_mille: u32) -> bool {
        (self.next_rand() % 1000) < per_mille as u64
    }

    /// Advance one checkpoint: consume one roll per fault kind (fixed
    /// order keeps the schedule deterministic) and report which fire.
    /// Rolls outside the plan's window are suppressed but still consumed.
    pub fn begin_tick(&mut self) -> TickFire {
        let tick = self.ticks;
        self.ticks += 1;
        let fire = TickFire {
            code: self.roll(self.plan.code_per_mille),
            redirector: self.roll(self.plan.redirector_per_mille),
            dcache: self.roll(self.plan.dcache_per_mille),
        };
        let in_window = self
            .plan
            .window
            .map(|(start, end)| (start..end).contains(&tick))
            .unwrap_or(true);
        if in_window {
            fire
        } else {
            TickFire::default()
        }
    }

    /// Draw a target choice in `0..n` (`n > 0`).
    pub fn pick(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_rand() % n
    }
}

/// CRC-32 seals over installed tcache spans, keyed by start address.
/// Lives entirely outside simulated memory.
#[derive(Default)]
pub struct SealTable {
    spans: BTreeMap<u32, SealEntry>,
}

struct SealEntry {
    len_bytes: u32,
    crc: u32,
}

impl SealTable {
    /// (Re)seal the span `[start, start + len_bytes)` from its current
    /// simulated-memory contents.
    pub fn seal(&mut self, machine: &Machine, start: u32, len_bytes: u32) {
        let bytes = machine
            .mem
            .read_bytes(start, len_bytes)
            .expect("sealed span is mapped");
        self.spans.insert(
            start,
            SealEntry {
                len_bytes,
                crc: crc32(bytes),
            },
        );
    }

    /// Recompute the seal of the span containing `addr`, if any —
    /// the backpatch case, where one word inside a sealed chunk changed
    /// legitimately. Returns whether a span was found.
    pub fn reseal_containing(&mut self, machine: &Machine, addr: u32) -> bool {
        let Some((start, len)) = self.containing(addr) else {
            return false;
        };
        self.seal(machine, start, len);
        true
    }

    /// Drop the seal starting at `start`.
    pub fn unseal(&mut self, start: u32) {
        self.spans.remove(&start);
    }

    /// Drop every seal (tcache flush).
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Is there a seal whose span starts exactly at `start`?
    pub fn sealed_at(&self, start: u32) -> bool {
        self.spans.contains_key(&start)
    }

    /// The sealed span containing `addr`, as `(start, len_bytes)`.
    pub fn containing(&self, addr: u32) -> Option<(u32, u32)> {
        let (&start, e) = self.spans.range(..=addr).next_back()?;
        (addr < start + e.len_bytes).then_some((start, e.len_bytes))
    }

    /// Does the span starting at `start` still match its seal?
    /// `true` for unknown spans (nothing to check).
    pub fn verify(&self, machine: &Machine, start: u32) -> bool {
        let Some(e) = self.spans.get(&start) else {
            return true;
        };
        let bytes = machine
            .mem
            .read_bytes(start, e.len_bytes)
            .expect("sealed span is mapped");
        crc32(bytes) == e.crc
    }

    /// Start addresses of every sealed span, in address order.
    pub fn starts(&self) -> Vec<u32> {
        self.spans.keys().copied().collect()
    }

    /// Number of sealed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total sealed words (the injection target space).
    pub fn total_words(&self) -> u64 {
        self.spans.values().map(|e| (e.len_bytes / 4) as u64).sum()
    }

    /// Address of the `k`-th sealed word, in address order.
    pub fn word_at(&self, mut k: u64) -> Option<u32> {
        for (&start, e) in &self.spans {
            let words = (e.len_bytes / 4) as u64;
            if k < words {
                return Some(start + (k as u32) * 4);
            }
            k -= words;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: MemFaultPlan, ticks: u64) -> Vec<TickFire> {
        let mut inj = MemFaultInjector::new(plan);
        (0..ticks).map(|_| inj.begin_tick()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = MemFaultPlan {
            code_per_mille: 100,
            redirector_per_mille: 50,
            dcache_per_mille: 30,
            ..MemFaultPlan::clean(42)
        };
        assert_eq!(schedule(plan, 5000), schedule(plan, 5000));
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = MemFaultPlan {
            code_per_mille: 100,
            ..MemFaultPlan::clean(1)
        };
        let b = MemFaultPlan {
            code_per_mille: 100,
            ..MemFaultPlan::clean(2)
        };
        assert_ne!(schedule(a, 5000), schedule(b, 5000));
    }

    #[test]
    fn clean_plan_fires_nothing() {
        assert!(schedule(MemFaultPlan::clean(7), 10_000)
            .iter()
            .all(|f| !f.any()));
    }

    #[test]
    fn window_confines_the_burst() {
        let plan = MemFaultPlan {
            code_per_mille: 1000,
            window: Some((100, 200)),
            ..MemFaultPlan::clean(3)
        };
        let fires = schedule(plan, 1000);
        for (i, f) in fires.iter().enumerate() {
            assert_eq!(f.any(), (100..200).contains(&i), "tick {i}");
        }
    }

    #[test]
    fn ledger_balance() {
        let mut s = IntegrityStats {
            violations: 5,
            retranslations: 3,
            slow_path_pins: 2,
            ..IntegrityStats::default()
        };
        assert!(s.balanced());
        s.violations += 1;
        assert!(!s.balanced());
    }
}
