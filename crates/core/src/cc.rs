//! The cache controller (CC) — the client side of the softcache.
//!
//! The CC owns the translation cache (tcache) and its map (Figure 4 of the
//! paper: tcache, tcache map, next-free pointer). It installs rewritten
//! chunks, services miss stubs by requesting targets from the MC and then
//! **rewriting the branch again** to point at the now-resident copy, runs
//! the hash-table fallback for computed jumps, and implements invalidation:
//! finding "any and all pointers that implicitly mark a basic block as
//! valid" — incoming branches recorded at patch time, plus return addresses
//! on the stack, which the known frame layout lets it walk.

use crate::endpoint::McEndpoint;
use crate::integrity::{IntegrityConfig, IntegrityStats, MemFaultInjector, SealTable};
use crate::power::BankModel;
use crate::protocol::{ChunkPayload, PatchKind, Reply, Request};
use softcache_isa::inst::Inst;
use softcache_isa::layout::{FP_SENTINEL, STACK_TOP};
use softcache_isa::reg::Reg;
use softcache_isa::{cf, encode};
use softcache_net::{LinkModel, LinkPolicy, LinkStats, NetError};
use softcache_sim::{Machine, SimError};
use std::collections::{HashMap, HashSet};

/// Configuration of the software instruction cache.
#[derive(Clone, Copy, Debug)]
pub struct IcacheConfig {
    /// Base address of the tcache region in client memory.
    pub tcache_base: u32,
    /// Size of the tcache in bytes.
    pub tcache_size: u32,
    /// MC↔CC link cost model.
    pub link: LinkModel,
    /// Retry/backoff policy for the remote MC endpoint (ignored when the
    /// MC is fused in-process).
    pub link_policy: LinkPolicy,
    /// Fixed CC-side cycles per serviced miss (trap entry, record lookup,
    /// patching).
    pub miss_handler_cycles: u64,
    /// Cycles per hash-table lookup for computed jumps.
    pub hash_lookup_cycles: u64,
    /// Cycles per installed word (copy into tcache).
    pub install_cycles_per_word: u64,
    /// Speculative-push depth: on a miss, ask the MC for up to this many
    /// predicted-next chunks beyond the demanded one, shipped in one
    /// batched reply. 0 disables batching (the paper's one-chunk-per-miss
    /// protocol).
    pub prefetch_depth: u32,
    /// Execute translated code through the simulator's superblock micro-op
    /// engine (host-side speed only; simulated results are bit-identical
    /// either way — tests and benches A/B it).
    pub superblocks: bool,
    /// Chain superblocks across terminators with statically known targets
    /// (trace formation): whole traces run with one dispatch and one
    /// budget check per generation-stamped link. Composes with
    /// `superblocks` — ignored when that is off. Host-side speed only;
    /// simulated results are bit-identical either way.
    pub chaining: bool,
    /// Give register-indirect terminators (`jr`/`jalr`/`ret`) per-site
    /// inline caches so monomorphic indirects chain like static legs.
    /// Composes with `chaining` — ignored when that is off. Host-side
    /// speed only; simulated results are bit-identical either way.
    pub indirect_ic: bool,
    /// Return-address-stack depth for predicting `ret` targets from the
    /// matching call (0 disables the RAS). Host-side speed only; every
    /// prediction is validated, so simulated results are bit-identical at
    /// any depth.
    pub ras_depth: u32,
    /// Promote hot superblocks to the threaded-dispatch tier (flat
    /// handler-pointer arrays, no per-uop match — DESIGN.md §14).
    /// Composes with `superblocks` — ignored when that is off. Host-side
    /// speed only; simulated results are bit-identical either way.
    pub threaded: bool,
    /// Entry-count a superblock must reach (under TRRIP-style epoch
    /// decay) before it is lowered to threaded form. 0 threads every
    /// block at lowering time; [`softcache_sim::THREADED_NEVER`] never
    /// promotes.
    pub threaded_threshold: u32,
    /// Integrity-seal verification and corruption-watchdog knobs
    /// (DESIGN.md §13).
    pub integrity: IntegrityConfig,
    /// Instruction budget for a run.
    pub fuel: u64,
}

impl Default for IcacheConfig {
    fn default() -> IcacheConfig {
        IcacheConfig {
            tcache_base: softcache_isa::layout::TCACHE_BASE,
            tcache_size: 48 * 1024,
            link: LinkModel::default(),
            link_policy: LinkPolicy::default(),
            miss_handler_cycles: 60,
            hash_lookup_cycles: 12,
            install_cycles_per_word: 2,
            prefetch_depth: 0,
            superblocks: true,
            chaining: true,
            indirect_ic: true,
            ras_depth: softcache_sim::DEFAULT_RAS_DEPTH,
            threaded: true,
            threaded_threshold: softcache_sim::DEFAULT_THREADED_THRESHOLD,
            integrity: IntegrityConfig::default(),
            fuel: 2_000_000_000,
        }
    }
}

/// Cache-controller statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IcacheStats {
    /// Chunks translated (the numerator of the paper's software miss rate).
    pub translations: u64,
    /// Miss stubs executed.
    pub miss_traps: u64,
    /// Computed-jump traps.
    pub hash_traps: u64,
    /// Computed-jump traps that hit the map.
    pub hash_hits: u64,
    /// Full tcache flushes.
    pub flushes: u64,
    /// Individual chunk invalidations.
    pub chunk_invalidations: u64,
    /// Patch operations applied (branches re-rewritten).
    pub patches: u64,
    /// Words installed into the tcache.
    pub words_installed: u64,
    /// Return-address slots redirected during invalidation.
    pub ra_redirects: u64,
    /// Cycles spent servicing misses (handler + link stall + install).
    pub miss_cycles: u64,
    /// Link traffic.
    pub link: LinkStats,
    /// Integrity-seal / self-healing ledger (all zero unless faults are
    /// injected or trap-entry verification is armed).
    pub integrity: IntegrityStats,
}

/// Errors from the softcache runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// A single chunk is larger than the whole tcache.
    ChunkTooBig {
        /// The chunk's size in bytes.
        bytes: u32,
        /// The tcache capacity.
        capacity: u32,
    },
    /// The MC reported an error.
    Mc(u32),
    /// Transport failure.
    Net(NetError),
    /// Protocol violation.
    Proto,
    /// CPU fault.
    Sim(SimError),
    /// Instruction budget exhausted.
    OutOfFuel,
    /// A trap referenced an unknown miss record (corrupted tcache).
    BadMissRecord(u32),
    /// The MC's session epoch changed: it restarted and lost its residence
    /// mirror. The CC must resync (full local invalidate) and retry.
    McRestarted,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::ChunkTooBig { bytes, capacity } => {
                write!(
                    f,
                    "chunk of {bytes} bytes exceeds tcache of {capacity} bytes"
                )
            }
            CacheError::Mc(code) => write!(f, "memory controller error {code}"),
            CacheError::Net(e) => write!(f, "link error: {e}"),
            CacheError::Proto => write!(f, "protocol violation"),
            CacheError::Sim(e) => write!(f, "{e}"),
            CacheError::OutOfFuel => write!(f, "instruction budget exhausted"),
            CacheError::BadMissRecord(idx) => write!(f, "unknown miss record {idx}"),
            CacheError::McRestarted => write!(f, "memory controller restarted (epoch changed)"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<SimError> for CacheError {
    fn from(e: SimError) -> CacheError {
        CacheError::Sim(e)
    }
}

#[derive(Clone, Debug)]
struct MissRecord {
    orig_target: u32,
    /// Patch site applied once the target is resident.
    patch: Option<(u32, PatchKind)>,
    /// Chunk the patch site lives in (patches are skipped if it died).
    home: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
struct Incoming {
    from_chunk: usize,
    addr: u32,
    kind: PatchKind,
}

#[derive(Clone, Debug)]
struct ChunkInfo {
    orig_start: u32,
    tc_start: u32,
    n_words: u32,
    body_words: u32,
    extra_orig: Vec<u32>,
    incoming: Vec<Incoming>,
    records: Vec<u32>,
    alive: bool,
}

/// The cache controller state.
pub struct Cc {
    cfg: IcacheConfig,
    /// tcache map: original pc → tcache address (Figure 4's hash table).
    map: HashMap<u32, u32>,
    chunks: Vec<ChunkInfo>,
    records: Vec<Option<MissRecord>>,
    /// Return-address trampolines and standalone stubs:
    /// (tcache addr, original target, miss-record index). The record
    /// index lets a corrupted single-word span be regenerated purely
    /// from this metadata, no refetch needed.
    trampolines: Vec<(u32, u32, u32)>,
    next_free: u32,
    generation: u64,
    /// Pushed chunks installed but not yet observed entered. An entry
    /// leaves as a *hit* when the program reaches the chunk (miss stub,
    /// hash lookup, or a later demand chunk resolving into it) and as a
    /// *waste* when the chunk dies unentered (flush, resync, invalidation,
    /// end of run).
    pending_prefetch: HashSet<u32>,
    /// Optional banked-SRAM power model (§4): tracks which banks hold live
    /// tcache bytes so unused banks can be gated off.
    power: Option<BankModel>,
    /// CRC-32 seals over every installed span — CC metadata, never
    /// simulated memory (DESIGN.md §13).
    seals: SealTable,
    /// Verify seals at trap entry before redirecting the PC. Armed by
    /// [`Cc::arm_integrity`] or `cfg.integrity.verify_traps`.
    armed: bool,
    /// Watchdog: seal failures per original chunk address. Survives
    /// flushes — resetting it would let a stuck chunk livelock the
    /// retranslate loop across epochs.
    fails: HashMap<u32, u32>,
    /// Chunks pinned to the slow-path interpreter by the watchdog,
    /// keyed by original address so the pin follows reinstallation.
    pinned_origs: HashSet<u32>,
    /// Statistics.
    pub stats: IcacheStats,
}

impl Cc {
    /// Fresh controller.
    pub fn new(cfg: IcacheConfig) -> Cc {
        Cc {
            next_free: cfg.tcache_base,
            armed: cfg.integrity.verify_traps,
            cfg,
            map: HashMap::new(),
            chunks: Vec::new(),
            records: Vec::new(),
            trampolines: Vec::new(),
            generation: 0,
            pending_prefetch: HashSet::new(),
            power: None,
            seals: SealTable::default(),
            fails: HashMap::new(),
            pinned_origs: HashSet::new(),
            stats: IcacheStats::default(),
        }
    }

    /// Arm trap-entry seal verification (done automatically when a
    /// memory-fault plan is injected into a run).
    pub fn arm_integrity(&mut self) {
        self.armed = true;
    }

    /// The tcache address `orig` is currently translated to, if resident.
    pub fn translation_of(&self, orig: u32) -> Option<u32> {
        self.map.get(&orig).copied()
    }

    /// Attach a banked-SRAM power model; installs, flushes and
    /// invalidations will drive its occupancy, and the run loop its access
    /// accounting.
    pub fn attach_power(&mut self, model: BankModel) {
        self.power = Some(model);
    }

    /// The power model, if attached.
    pub fn power(&self) -> Option<&BankModel> {
        self.power.as_ref()
    }

    /// Account one instruction fetch for the power model.
    #[inline]
    pub fn power_access(&mut self, addr: u32, cycle: u64) {
        if let Some(p) = &mut self.power {
            p.access(addr, cycle);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IcacheConfig {
        &self.cfg
    }

    /// Bytes of tcache currently allocated.
    pub fn used_bytes(&self) -> u32 {
        self.next_free - self.cfg.tcache_base
    }

    /// Number of live chunks.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.alive).count()
    }

    /// Is `orig` currently translated?
    pub fn is_resident(&self, orig: u32) -> bool {
        self.map.contains_key(&orig)
    }

    fn end(&self) -> u32 {
        self.cfg.tcache_base + self.cfg.tcache_size
    }

    fn rpc(&mut self, ep: &mut McEndpoint, req: &Request) -> Result<(Reply, u64), CacheError> {
        let out = ep.rpc(req)?;
        let stall = self.stats.link.record_attempts(
            &self.cfg.link,
            out.req_bytes,
            out.rep_bytes,
            out.attempts,
            out.backoff,
        );
        self.stats.link.session.absorb(&out.session);
        Ok((out.reply, stall))
    }

    /// Chunk id containing tcache address `addr`, if any.
    fn chunk_at(&self, addr: u32) -> Option<usize> {
        self.chunks
            .iter()
            .position(|c| c.alive && addr >= c.tc_start && addr < c.tc_start + c.n_words * 4)
    }

    /// Map a tcache address back to the original-program resume address.
    fn tc_to_orig(&self, addr: u32) -> Option<u32> {
        if let Some(id) = self.chunk_at(addr) {
            let c = &self.chunks[id];
            let widx = (addr - c.tc_start) / 4;
            return if widx < c.body_words {
                Some(c.orig_start + widx * 4)
            } else {
                c.extra_orig.get((widx - c.body_words) as usize).copied()
            };
        }
        self.trampolines
            .iter()
            .find(|&&(a, _, _)| a == addr)
            .map(|&(_, o, _)| o)
    }

    fn in_tcache(&self, addr: u32) -> bool {
        addr >= self.cfg.tcache_base && addr < self.end()
    }

    /// Ensure the chunk starting at `orig` is resident; returns its tcache
    /// address. May flush the whole tcache to make room.
    pub fn ensure(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        if let Some(&tc) = self.map.get(&orig) {
            if self.pending_prefetch.remove(&orig) {
                self.stats.link.prefetch_hits += 1;
            }
            return Ok(tc);
        }
        let mut flushed = false;
        let mut batch_ok = self.cfg.prefetch_depth > 0;
        loop {
            let dest = self.next_free;
            let req = if batch_ok {
                Request::FetchBatch {
                    orig_pc: orig,
                    dest,
                    max_chunks: self.cfg.prefetch_depth + 1,
                    budget_bytes: self.end().saturating_sub(dest),
                }
            } else {
                Request::FetchBlock {
                    orig_pc: orig,
                    dest,
                }
            };
            let (reply, stall) = match self.rpc(ep, &req) {
                Ok(x) => x,
                Err(CacheError::McRestarted) => {
                    // The MC came back empty-handed: nothing it resolved
                    // for us is trustworthy any more. Drop everything
                    // locally and retry this fetch against the fresh MC.
                    self.resync(machine);
                    flushed = false;
                    continue;
                }
                Err(CacheError::Net(NetError::Timeout)) if batch_ok => {
                    // The batched exchange exhausted its retries. The MC
                    // may well have processed it (our reply lost on the
                    // wire), leaving residence-mirror entries for pushed
                    // chunks we never installed. Flush to clear them, then
                    // degrade to the single-chunk protocol for this miss.
                    self.stats.link.session.batch_fallbacks += 1;
                    batch_ok = false;
                    self.flush(machine, ep)?;
                    flushed = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            self.stats.miss_cycles += stall;
            machine.stats.cycles += stall;
            let chunks = match reply {
                Reply::Chunk(c) => vec![c],
                Reply::Batch(cs) if !cs.is_empty() => cs,
                Reply::Err(code) => return Err(CacheError::Mc(code)),
                _ => return Err(CacheError::Proto),
            };
            let bytes = chunks[0].words.len() as u32 * 4;
            if dest + bytes > self.end() {
                // A fresh tcache still holds the return-address trampolines
                // the flush creates, so "fits" means fits in what a flush
                // actually frees — flushing more than once cannot help.
                if bytes > self.cfg.tcache_size || flushed {
                    return Err(CacheError::ChunkTooBig {
                        bytes,
                        capacity: self.end().saturating_sub(dest).min(self.cfg.tcache_size),
                    });
                }
                // Not enough room: flush everything (the SPARC prototype's
                // policy, like Dynamo/Shade) and retry at the new top.
                self.flush(machine, ep)?;
                flushed = true;
                continue;
            }
            let mut it = chunks.into_iter();
            if it.len() > 1 || batch_ok {
                self.stats.link.batches += 1;
            }
            let demand = it.next().expect("checked non-empty");
            self.install(machine, demand, dest, self.cfg.miss_handler_cycles)?;
            // Opportunistically install the pushed chunks right behind the
            // demanded one. They consume only free space past `next_free`
            // (the MC's byte budget was exactly our free space), so nothing
            // live or pinned is ever evicted to make room for speculation.
            for chunk in it {
                let d = self.next_free;
                let bytes = chunk.words.len() as u32 * 4;
                if d + bytes > self.end() || self.map.contains_key(&chunk.orig_start) {
                    // Unreachable with an honest MC: pushes are budget-
                    // bounded and skip resident chunks.
                    return Err(CacheError::Proto);
                }
                let orig_start = chunk.orig_start;
                self.stats.link.prefetched_chunks += 1;
                self.stats.link.prefetched_bytes += bytes as u64;
                self.install(machine, chunk, d, 0)?;
                self.pending_prefetch.insert(orig_start);
            }
            return Ok(dest);
        }
    }

    /// Install one rewritten chunk at `dest`. `handler_cycles` is the
    /// fixed trap-servicing cost to charge: the demanded chunk of a fetch
    /// pays `miss_handler_cycles`, a speculatively-pushed chunk pays 0 (no
    /// trap ran for it — only the per-word copy cost applies).
    fn install(
        &mut self,
        machine: &mut Machine,
        chunk: ChunkPayload,
        dest: u32,
        handler_cycles: u64,
    ) -> Result<(), CacheError> {
        let n_words = chunk.words.len() as u32;
        machine
            .mem
            .write_words(dest, &chunk.words)
            .expect("tcache region is mapped");
        let id = self.chunks.len();
        let mut record_ids = Vec::with_capacity(chunk.exits.len());
        for exit in &chunk.exits {
            let idx = self.records.len() as u32;
            self.records.push(Some(MissRecord {
                orig_target: exit.orig_target,
                patch: Some((dest + exit.patch_slot * 4, exit.kind)),
                home: Some(id),
            }));
            record_ids.push(idx);
            machine
                .mem
                .write_u32(dest + exit.stub_slot * 4, encode(Inst::Miss { idx }))
                .expect("stub slot in range");
        }
        // A watchdog-pinned chunk is excluded from superblock lowering:
        // its span runs on the per-instruction slow path wherever it gets
        // reinstalled.
        if self.pinned_origs.contains(&chunk.orig_start) {
            machine.pin_slow_span(dest, dest + n_words * 4);
        }
        // The chunk body and its miss stubs are final: predecode the whole
        // range eagerly (instruction slots + superblocks + chunk-internal
        // successor links), so the first pass through freshly installed
        // code already runs the fast path as one chained trace. A no-op
        // when the superblock engine is off.
        machine.predecode_range(dest, dest + n_words * 4);
        // Seal the finished span — body plus stub words, read back from
        // simulated memory so the seal covers exactly what will execute.
        self.seals.seal(machine, dest, n_words * 4);
        self.chunks.push(ChunkInfo {
            orig_start: chunk.orig_start,
            tc_start: dest,
            n_words,
            body_words: chunk.body_words,
            extra_orig: chunk.extra_orig,
            incoming: Vec::new(),
            records: record_ids,
            alive: true,
        });
        self.map.insert(chunk.orig_start, dest);
        self.next_free = dest + n_words * 4;
        if let Some(p) = &mut self.power {
            p.occupy(dest, n_words * 4);
        }
        // Incoming pointers the MC resolved at rewrite time.
        for rr in &chunk.resolved {
            if let Some(&tc) = self.map.get(&rr.orig_target) {
                if let Some(tid) = self.chunk_at(tc) {
                    self.chunks[tid].incoming.push(Incoming {
                        from_chunk: id,
                        addr: dest + rr.slot * 4,
                        kind: rr.kind,
                    });
                }
            }
            // A demand chunk resolved straight into a pushed chunk reaches
            // it without ever trapping — count the speculation as paid off
            // now. (Pushed chunks resolving into each other don't count:
            // they are themselves speculative.)
            if handler_cycles != 0 && self.pending_prefetch.remove(&rr.orig_target) {
                self.stats.link.prefetch_hits += 1;
            }
        }
        self.stats.translations += 1;
        self.stats.words_installed += n_words as u64;
        let cycles = handler_cycles + self.cfg.install_cycles_per_word * n_words as u64;
        self.stats.miss_cycles += cycles;
        machine.stats.cycles += cycles;
        Ok(())
    }

    /// Service a `miss` trap: translate the target, patch the site that
    /// missed (rewriting the branch to point at the now-resident block),
    /// and redirect the PC.
    pub fn handle_miss(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        idx: u32,
    ) -> Result<(), CacheError> {
        self.stats.miss_traps += 1;
        let rec = self
            .records
            .get(idx as usize)
            .and_then(|r| r.clone())
            .ok_or(CacheError::BadMissRecord(idx))?;
        let gen_before = self.generation;
        let target_tc = self.verified_target(machine, ep, rec.orig_target)?;
        // Patch only if no flush intervened and the home chunk survived.
        if self.generation == gen_before {
            let home_alive = rec
                .home
                .map(|h| self.chunks.get(h).map(|c| c.alive).unwrap_or(false))
                .unwrap_or(false);
            if let (Some((addr, kind)), true) = (rec.patch, home_alive) {
                self.apply_patch(machine, addr, kind, target_tc)?;
                if let Some(tid) = self.chunk_at(target_tc) {
                    self.chunks[tid].incoming.push(Incoming {
                        from_chunk: rec.home.expect("checked"),
                        addr,
                        kind,
                    });
                }
            }
        }
        machine.cpu.pc = target_tc;
        Ok(())
    }

    fn apply_patch(
        &mut self,
        machine: &mut Machine,
        addr: u32,
        kind: PatchKind,
        target_tc: u32,
    ) -> Result<(), CacheError> {
        match kind {
            PatchKind::Retarget => {
                let word = machine.mem.read_u32(addr).expect("patch site mapped");
                let patched = cf::retarget(word, addr, target_tc).map_err(|_| CacheError::Proto)?;
                machine.mem.write_u32(addr, patched).expect("mapped");
            }
            PatchKind::ReplaceWord => {
                let j = cf::retarget(encode(Inst::J { off: 0 }), addr, target_tc)
                    .map_err(|_| CacheError::Proto)?;
                machine.mem.write_u32(addr, j).expect("mapped");
            }
        }
        // Re-predecode the patched word immediately — backpatching is the
        // common warm-up write, and the patched site sits in code the
        // client is about to re-enter. (The write bumped the code
        // generation, severing every superblock link; survivors re-chain
        // lazily on their next dispatch.)
        machine.predecode_range(addr, addr + 4);
        // The containing chunk changed legitimately: recompute its seal.
        self.seals.reseal_containing(machine, addr);
        self.stats.patches += 1;
        Ok(())
    }

    /// Service a computed-jump trap (`jrh`/`jalrh`): translate the
    /// original-address target through the map (hash lookup), fetching it
    /// on a miss, and return the tcache address to resume at.
    pub fn hash_jump(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig_target: u32,
    ) -> Result<u32, CacheError> {
        self.stats.hash_traps += 1;
        let cycles = self.cfg.hash_lookup_cycles;
        self.stats.miss_cycles += cycles;
        machine.stats.cycles += cycles;
        if self.map.contains_key(&orig_target) {
            self.stats.hash_hits += 1;
        }
        // `ensure` (inside `verified_target`) settles the prefetch ledger
        // on the map-hit path.
        self.verified_target(machine, ep, orig_target)
    }

    /// [`Cc::ensure`] plus — when integrity verification is armed — a
    /// seal check of the target span *before* the PC is redirected into
    /// it. A corrupted target is quarantined and refetched through the
    /// ordinary miss path, so the trap never lands in corrupted code.
    fn verified_target(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        loop {
            let tc = self.ensure(machine, ep, orig)?;
            if !self.armed {
                return Ok(tc);
            }
            let Some((start, _)) = self.seals.containing(tc) else {
                return Ok(tc);
            };
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                return Ok(tc);
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
            // The heal dropped the corrupted translation; go around to
            // refetch a clean copy.
        }
    }

    // ---- invalidation ----

    /// Enumerate return-address locations: the `ra` register plus the
    /// `fp-4` slot of every frame on the fp chain — exactly the stack-walk
    /// the paper's programming-model restrictions make possible.
    fn ra_locations(&self, machine: &Machine) -> Vec<(RaLoc, u32)> {
        let mut out = vec![(RaLoc::Reg, machine.cpu.get(Reg::RA) as u32)];
        let mut fp = machine.cpu.get(Reg::FP) as u32;
        for _ in 0..100_000 {
            if fp == FP_SENTINEL {
                break;
            }
            if !fp.is_multiple_of(4) || !(8..=STACK_TOP).contains(&fp) {
                break; // corrupt chain; stop walking
            }
            let Ok(ra) = machine.mem.read_u32(fp - 4) else {
                break;
            };
            out.push((RaLoc::Mem(fp - 4), ra));
            let Ok(next) = machine.mem.read_u32(fp - 8) else {
                break;
            };
            if next != FP_SENTINEL && next <= fp {
                break; // frames must grow downward; refuse cycles
            }
            fp = next;
        }
        out
    }

    /// Allocate (or reuse) a return-address trampoline for `orig`.
    fn trampoline_for(&mut self, machine: &mut Machine, orig: u32) -> Option<u32> {
        if let Some(&(addr, _, _)) = self.trampolines.iter().find(|&&(_, o, _)| o == orig) {
            return Some(addr);
        }
        if self.next_free + 4 > self.end() {
            return None;
        }
        let addr = self.next_free;
        self.next_free += 4;
        if let Some(p) = &mut self.power {
            p.occupy(addr, 4);
        }
        let idx = self.records.len() as u32;
        self.records.push(Some(MissRecord {
            orig_target: orig,
            patch: None,
            home: None,
        }));
        machine
            .mem
            .write_u32(addr, encode(Inst::Miss { idx }))
            .expect("tcache mapped");
        self.trampolines.push((addr, orig, idx));
        self.seals.seal(machine, addr, 4);
        Some(addr)
    }

    fn write_ra(&mut self, machine: &mut Machine, loc: RaLoc, value: u32) {
        match loc {
            RaLoc::Reg => machine.cpu.set(Reg::RA, value as i32),
            RaLoc::Mem(addr) => machine
                .mem
                .write_u32(addr, value)
                .expect("stack slot mapped"),
        }
        self.stats.ra_redirects += 1;
    }

    /// Collect live return addresses pointing into the tcache, mapped back
    /// to original-program addresses (must run while the tc→orig mapping
    /// still exists).
    fn collect_tcache_ras(&self, machine: &Machine) -> Vec<(RaLoc, u32)> {
        self.ra_locations(machine)
            .into_iter()
            .filter(|&(_, v)| self.in_tcache(v))
            .filter_map(|(loc, v)| self.tc_to_orig(v).map(|o| (loc, o)))
            .collect()
    }

    /// Drop every chunk, record and trampoline and reset the allocation
    /// pointer — the local half of both [`Cc::flush`] and [`Cc::resync`].
    fn reset_local(&mut self) {
        self.stats.link.prefetch_wastes += self.pending_prefetch.len() as u64;
        self.pending_prefetch.clear();
        self.chunks.clear();
        self.map.clear();
        self.records.clear();
        self.trampolines.clear();
        self.seals.clear();
        self.next_free = self.cfg.tcache_base;
        self.generation += 1;
        if let Some(p) = &mut self.power {
            p.release_all();
        }
    }

    /// Re-point previously collected return addresses at fresh trampolines
    /// in the (now empty) tcache.
    fn retrampoline(&mut self, machine: &mut Machine, pending: Vec<(RaLoc, u32)>) {
        for (loc, orig) in pending {
            let stub = self
                .trampoline_for(machine, orig)
                .expect("fresh tcache has room for trampolines");
            self.write_ra(machine, loc, stub);
        }
    }

    /// Recover from an MC restart: the new MC's mirror is empty, so every
    /// locally cached translation is unverifiable. Drop them all (return
    /// addresses are preserved via trampolines, exactly as in a capacity
    /// flush) and let execution refetch on demand. No RPC is needed — the
    /// fresh MC has nothing to invalidate.
    pub fn resync(&mut self, machine: &mut Machine) {
        let pending = self.collect_tcache_ras(machine);
        self.reset_local();
        self.stats.link.session.resyncs += 1;
        // Every tcache address is about to be recycled: predicted returns
        // into the dead translations would only mispredict, and slow-path
        // pins anchored to dead spans would wrongly slow fresh code (the
        // pinned origs re-pin on reinstall).
        machine.clear_ras();
        machine.clear_slow_pins();
        self.retrampoline(machine, pending);
    }

    /// Flush the entire tcache. Live return addresses are mapped back to
    /// original addresses *before* the state is cleared and redirected to
    /// fresh trampolines after.
    pub fn flush(&mut self, machine: &mut Machine, ep: &mut McEndpoint) -> Result<(), CacheError> {
        let pending = self.collect_tcache_ras(machine);
        self.reset_local();
        self.stats.flushes += 1;
        // As in resync: the whole tcache is recycled, so drop every
        // return-address prediction into it and every slow-path pin
        // anchored to the dead spans.
        machine.clear_ras();
        machine.clear_slow_pins();
        match self.rpc(ep, &Request::InvalidateAll) {
            Ok((reply, stall)) => {
                machine.stats.cycles += stall;
                if !matches!(reply, Reply::Ack) {
                    return Err(CacheError::Proto);
                }
            }
            // A restarted MC has an empty mirror — the invalidation we were
            // about to request already happened, just more thoroughly.
            Err(CacheError::McRestarted) => self.stats.link.session.resyncs += 1,
            Err(e) => return Err(e),
        }
        self.retrampoline(machine, pending);
        Ok(())
    }

    /// Invalidate the single chunk translated from `orig` (the API the
    /// paper's self-modifying-code restriction requires programs to call).
    /// Returns `false` if `orig` was not resident.
    ///
    /// Every pointer that implicitly marked the chunk valid is found and
    /// redirected: incoming branches recorded at patch time are re-pointed
    /// at fresh miss stubs, and return addresses into the chunk are
    /// redirected to trampolines.
    pub fn invalidate_chunk(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<bool, CacheError> {
        let Some(&tc) = self.map.get(&orig) else {
            return Ok(false);
        };
        let Some(cid) = self.chunk_at(tc) else {
            return Ok(false);
        };
        let chunk = self.chunks[cid].clone();

        // 1. Re-point incoming sites at fresh miss stubs.
        for inc in &chunk.incoming {
            if !self
                .chunks
                .get(inc.from_chunk)
                .map(|c| c.alive)
                .unwrap_or(false)
            {
                continue;
            }
            let idx = self.records.len() as u32;
            self.records.push(Some(MissRecord {
                orig_target: orig,
                patch: Some((inc.addr, inc.kind)),
                home: Some(inc.from_chunk),
            }));
            self.chunks[inc.from_chunk].records.push(idx);
            match inc.kind {
                PatchKind::ReplaceWord => {
                    machine
                        .mem
                        .write_u32(inc.addr, encode(Inst::Miss { idx }))
                        .expect("mapped");
                }
                PatchKind::Retarget => {
                    // A branch needs somewhere to land: allocate a stub.
                    let Some(stub) = self.alloc_stub(machine, idx) else {
                        // No room for a stub: degrade to a full flush.
                        self.flush(machine, ep)?;
                        return Ok(true);
                    };
                    let word = machine.mem.read_u32(inc.addr).expect("mapped");
                    let patched =
                        cf::retarget(word, inc.addr, stub).map_err(|_| CacheError::Proto)?;
                    machine.mem.write_u32(inc.addr, patched).expect("mapped");
                }
            }
            // The site's home chunk changed legitimately: reseal it.
            self.seals.reseal_containing(machine, inc.addr);
        }

        // 2. Redirect return addresses pointing into the dying chunk.
        let span = chunk.tc_start..chunk.tc_start + chunk.n_words * 4;
        let pending: Vec<(RaLoc, u32)> = self
            .ra_locations(machine)
            .into_iter()
            .filter(|(_, v)| span.contains(v))
            .filter_map(|(loc, v)| self.tc_to_orig(v).map(|o| (loc, o)))
            .collect();
        for (loc, target) in pending {
            match self.trampoline_for(machine, target) {
                Some(stub) => self.write_ra(machine, loc, stub),
                None => {
                    self.flush(machine, ep)?;
                    return Ok(true);
                }
            }
        }

        // 3. Kill the chunk: its records, its incoming entries elsewhere,
        //    its map entry.
        for ridx in &self.chunks[cid].records {
            self.records[*ridx as usize] = None;
        }
        for other in &mut self.chunks {
            other.incoming.retain(|i| i.from_chunk != cid);
        }
        self.chunks[cid].alive = false;
        self.map.remove(&orig);
        self.seals.unseal(chunk.tc_start);
        if self.pinned_origs.contains(&orig) {
            machine.unpin_slow_span(chunk.tc_start, chunk.tc_start + chunk.n_words * 4);
        }
        if self.pending_prefetch.remove(&orig) {
            self.stats.link.prefetch_wastes += 1;
        }
        self.stats.chunk_invalidations += 1;
        if let Some(p) = &mut self.power {
            p.release(chunk.tc_start, chunk.n_words * 4);
        }
        match self.rpc(ep, &Request::Invalidate { orig_pc: orig }) {
            Ok((reply, stall)) => {
                machine.stats.cycles += stall;
                if !matches!(reply, Reply::Ack) {
                    return Err(CacheError::Proto);
                }
            }
            // The MC restarted: the chunk is gone from its mirror along
            // with everything else. Resync the rest of our state too.
            Err(CacheError::McRestarted) => self.resync(machine),
            Err(e) => return Err(e),
        }
        Ok(true)
    }

    /// Settle the speculation ledger at the end of a run: pushed chunks
    /// never observed entered are counted as wasted. After this,
    /// `prefetch_hits + prefetch_wastes == prefetched_chunks`.
    pub fn finalize_prefetch(&mut self) {
        self.stats.link.prefetch_wastes += self.pending_prefetch.len() as u64;
        self.pending_prefetch.clear();
    }

    /// Allocate a standalone miss-stub word for record `idx`.
    fn alloc_stub(&mut self, machine: &mut Machine, idx: u32) -> Option<u32> {
        if self.next_free + 4 > self.end() {
            return None;
        }
        let addr = self.next_free;
        self.next_free += 4;
        machine
            .mem
            .write_u32(addr, encode(Inst::Miss { idx }))
            .expect("tcache mapped");
        // Record for the RA walker: resuming at a stub re-enters via its
        // miss record's target.
        let orig = self.records[idx as usize]
            .as_ref()
            .map(|r| r.orig_target)
            .unwrap_or(0);
        self.trampolines.push((addr, orig, idx));
        self.seals.seal(machine, addr, 4);
        Some(addr)
    }

    // ---- integrity: verification, healing, fault injection ----

    /// Verify every sealed span against simulated memory and heal any
    /// mismatch: corrupted chunks are quarantined and left to refetch
    /// through the ordinary miss path; corrupted trampoline/stub words
    /// are regenerated from CC metadata. Called after every injection
    /// checkpoint — before the guest resumes — so no corrupted
    /// instruction ever retires; the armed trap-entry checks are
    /// defense-in-depth on top.
    pub fn verify_and_heal(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
    ) -> Result<(), CacheError> {
        for start in self.seals.starts() {
            // An earlier heal this pass (quarantine, or its degrade-to-
            // flush) may have dropped this span already.
            if !self.seals.sealed_at(start) {
                continue;
            }
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                continue;
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
        }
        Ok(())
    }

    /// Recover the corrupted sealed span starting at `start`. Exactly one
    /// of `retranslations` / `slow_path_pins` is incremented per call,
    /// keeping the ledger invariant exact.
    fn heal_span(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        start: u32,
    ) -> Result<(), CacheError> {
        if let Some(cid) = self.chunk_at(start) {
            let orig = self.chunks[cid].orig_start;
            let fails = self.fails.entry(orig).or_insert(0);
            *fails += 1;
            let newly_pinned =
                *fails > self.cfg.integrity.watchdog_threshold && self.pinned_origs.insert(orig);
            if newly_pinned {
                // Watchdog: this chunk keeps failing its seal — degrade
                // it to the slow-path interpreter wherever it lands next
                // instead of optimistically retranslating forever.
                self.stats.integrity.slow_path_pins += 1;
            } else {
                self.stats.integrity.retranslations += 1;
            }
            self.stats.integrity.quarantines += 1;
            // Quarantine: sever every pointer that marks the chunk valid
            // (incoming branches, return addresses, map entry, records),
            // drop predicted returns into the dying span, and tell the
            // MC. The next entry refetches a clean copy on the ordinary
            // miss path.
            machine.clear_ras();
            self.invalidate_chunk(machine, ep, orig)?;
        } else if let Some(&(addr, _, idx)) = self.trampolines.iter().find(|&&(a, _, _)| a == start)
        {
            // A single-word trampoline/stub: regenerate it from CC
            // metadata — no refetch needed.
            machine
                .mem
                .write_u32(addr, encode(Inst::Miss { idx }))
                .expect("tcache mapped");
            machine.predecode_range(addr, addr + 4);
            self.seals.seal(machine, addr, 4);
            self.stats.integrity.retranslations += 1;
        } else {
            // Unreachable with consistent metadata: drop the orphan seal.
            self.seals.unseal(start);
            self.stats.integrity.retranslations += 1;
        }
        Ok(())
    }

    /// One fault-injection checkpoint: consume the plan's rolls, apply
    /// any bit flips through simulated memory (the write barrier bumps
    /// the code generation, modelling a refetch from the corrupted
    /// SRAM), then scrub-and-heal before the guest resumes.
    pub fn chaos_tick(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        inj: &mut MemFaultInjector,
    ) -> Result<(), CacheError> {
        let fire = inj.begin_tick();
        if !fire.any() {
            return Ok(());
        }
        // Resolve the guest pc to its original address BEFORE anything is
        // corrupted: if healing quarantines the very chunk being executed,
        // execution is re-routed through the ordinary miss path.
        let pc_orig = self.tc_to_orig(machine.cpu.pc);
        if fire.code {
            self.inject_code_flip(machine, inj);
        }
        if fire.redirector {
            self.inject_redirector_flip(machine, inj);
        }
        self.verify_and_heal(machine, ep)?;
        self.fixup_pc(machine, ep, pc_orig)?;
        Ok(())
    }

    /// Like [`Cc::chaos_tick`], but also lands scheduled dcache flips in
    /// the software data cache and scrubs it — the full-system
    /// ("all-at-once") injection checkpoint.
    pub fn chaos_tick_full(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        inj: &mut MemFaultInjector,
        dcache: &mut crate::dcache::Dcache,
    ) -> Result<(), CacheError> {
        let fire = inj.begin_tick();
        if !fire.any() {
            return Ok(());
        }
        let pc_orig = self.tc_to_orig(machine.cpu.pc);
        if fire.code {
            self.inject_code_flip(machine, inj);
        }
        if fire.redirector {
            self.inject_redirector_flip(machine, inj);
        }
        if fire.dcache && dcache.inject_flip(inj) {
            self.stats.integrity.dcache_flips += 1;
        }
        self.verify_and_heal(machine, ep)?;
        self.fixup_pc(machine, ep, pc_orig)?;
        if fire.dcache {
            let (checked, violations) = dcache.scrub();
            self.stats.integrity.seals_checked += checked;
            self.stats.integrity.seal_hits += checked - violations;
            self.stats.integrity.violations += violations;
            // A dropped clean line refills from the server on next
            // access — the data-side analogue of a retranslation.
            self.stats.integrity.retranslations += violations;
        }
        Ok(())
    }

    /// After a heal pass, re-route the guest pc if the span it was
    /// executing in was quarantined out from under it. `pc_orig` is the
    /// pre-heal resolution of the pc to its original-program address.
    fn fixup_pc(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        pc_orig: Option<u32>,
    ) -> Result<(), CacheError> {
        let pc = machine.cpu.pc;
        if self.chunk_at(pc).is_some() {
            return Ok(()); // still inside a live chunk
        }
        if self.trampolines.iter().any(|&(a, _, _)| a == pc) {
            return Ok(()); // trampolines/stubs heal in place
        }
        let Some(orig) = pc_orig else {
            return Ok(()); // pc was never in translated code
        };
        machine.cpu.pc = self.ensure(machine, ep, orig)?;
        Ok(())
    }

    /// Flip one seeded bit in an installed chunk (or in the plan's stuck
    /// chunk, if resident).
    fn inject_code_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        let addr = if let Some(orig) = inj.plan.stuck_orig {
            let Some(cid) = self
                .map
                .get(&orig)
                .copied()
                .and_then(|tc| self.chunk_at(tc))
            else {
                return;
            };
            let c = &self.chunks[cid];
            c.tc_start + inj.pick(c.n_words as u64) as u32 * 4
        } else {
            let total: u64 = self
                .chunks
                .iter()
                .filter(|c| c.alive)
                .map(|c| c.n_words as u64)
                .sum();
            if total == 0 {
                return;
            }
            let mut k = inj.pick(total);
            let mut addr = 0;
            for c in self.chunks.iter().filter(|c| c.alive) {
                if k < c.n_words as u64 {
                    addr = c.tc_start + k as u32 * 4;
                    break;
                }
                k -= c.n_words as u64;
            }
            addr
        };
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.code_flips += 1;
    }

    /// Flip one seeded bit in a trampoline / standalone-stub word.
    fn inject_redirector_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        if self.trampolines.is_empty() {
            return;
        }
        let k = inj.pick(self.trampolines.len() as u64) as usize;
        let addr = self.trampolines[k].0;
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.redirector_flips += 1;
    }

    fn flip_bit(&mut self, machine: &mut Machine, addr: u32, inj: &mut MemFaultInjector) {
        let word = machine.mem.read_u32(addr).expect("tcache mapped");
        let flipped = word ^ (1u32 << inj.pick(32));
        machine.mem.write_u32(addr, flipped).expect("tcache mapped");
    }
}

#[derive(Clone, Copy, Debug)]
enum RaLoc {
    Reg,
    Mem(u32),
}
