//! The cache controller (CC) — the client side of the softcache.
//!
//! The CC owns the translation cache (tcache) and its map (Figure 4 of the
//! paper: tcache, tcache map, next-free pointer). It installs rewritten
//! chunks, services miss stubs by requesting targets from the MC and then
//! **rewriting the branch again** to point at the now-resident copy, runs
//! the hash-table fallback for computed jumps, and implements invalidation:
//! finding "any and all pointers that implicitly mark a basic block as
//! valid" — incoming branches recorded at patch time, plus return addresses
//! on the stack, which the known frame layout lets it walk.

use crate::endpoint::McEndpoint;
use crate::integrity::{IntegrityConfig, IntegrityStats, MemFaultInjector, SealTable};
use crate::power::BankModel;
use crate::protocol::{ChunkPayload, PatchKind, Reply, Request};
use softcache_isa::inst::Inst;
use softcache_isa::layout::{FP_SENTINEL, STACK_TOP};
use softcache_isa::reg::Reg;
use softcache_isa::{cf, encode};
use softcache_net::{LinkModel, LinkPolicy, LinkStats, NetError};
use softcache_sim::{Machine, SimError};
use std::collections::{HashMap, HashSet};

/// Replacement policy applied when the tcache fills.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TcachePolicy {
    /// Wholesale flush on pressure — the paper's SPARC-prototype policy
    /// (like Dynamo/Shade) and the source of Figure 5's thrash cliff.
    FlushAll,
    /// TRRIP-flavored per-chunk victim eviction: each chunk carries a
    /// re-reference prediction value (hot/warm/cold insertion from its
    /// refetch history, aging under allocation pressure) and only enough
    /// cold victims are evicted to fit the incoming chunk. Degrades to a
    /// wholesale flush when pins/fragmentation leave no usable hole.
    #[default]
    Trrip,
}

/// TRRIP re-reference horizon: victims are taken at this value.
const RRPV_MAX: u8 = 3;
/// Insertion value for a chunk refetched soon after its eviction.
const RRPV_HOT: u8 = 0;
/// Insertion value for a chunk that has been evicted before.
const RRPV_WARM: u8 = 1;
/// Insertion value for a never-evicted demand fetch.
const RRPV_FRESH: u8 = 2;
/// Evictions within which a refetch counts as an imminent re-reference.
const REREF_WINDOW: u64 = 64;

/// Configuration of the software instruction cache.
#[derive(Clone, Copy, Debug)]
pub struct IcacheConfig {
    /// Base address of the tcache region in client memory.
    pub tcache_base: u32,
    /// Size of the tcache in bytes.
    pub tcache_size: u32,
    /// MC↔CC link cost model.
    pub link: LinkModel,
    /// Retry/backoff policy for the remote MC endpoint (ignored when the
    /// MC is fused in-process).
    pub link_policy: LinkPolicy,
    /// Fixed CC-side cycles per serviced miss (trap entry, record lookup,
    /// patching).
    pub miss_handler_cycles: u64,
    /// Cycles per hash-table lookup for computed jumps.
    pub hash_lookup_cycles: u64,
    /// Cycles per installed word (copy into tcache).
    pub install_cycles_per_word: u64,
    /// Speculative-push depth: on a miss, ask the MC for up to this many
    /// predicted-next chunks beyond the demanded one, shipped in one
    /// batched reply. 0 disables batching (the paper's one-chunk-per-miss
    /// protocol).
    pub prefetch_depth: u32,
    /// Execute translated code through the simulator's superblock micro-op
    /// engine (host-side speed only; simulated results are bit-identical
    /// either way — tests and benches A/B it).
    pub superblocks: bool,
    /// Chain superblocks across terminators with statically known targets
    /// (trace formation): whole traces run with one dispatch and one
    /// budget check per generation-stamped link. Composes with
    /// `superblocks` — ignored when that is off. Host-side speed only;
    /// simulated results are bit-identical either way.
    pub chaining: bool,
    /// Give register-indirect terminators (`jr`/`jalr`/`ret`) per-site
    /// inline caches so monomorphic indirects chain like static legs.
    /// Composes with `chaining` — ignored when that is off. Host-side
    /// speed only; simulated results are bit-identical either way.
    pub indirect_ic: bool,
    /// Return-address-stack depth for predicting `ret` targets from the
    /// matching call (0 disables the RAS). Host-side speed only; every
    /// prediction is validated, so simulated results are bit-identical at
    /// any depth.
    pub ras_depth: u32,
    /// Promote hot superblocks to the threaded-dispatch tier (flat
    /// handler-pointer arrays, no per-uop match — DESIGN.md §14).
    /// Composes with `superblocks` — ignored when that is off. Host-side
    /// speed only; simulated results are bit-identical either way.
    pub threaded: bool,
    /// Entry-count a superblock must reach (under TRRIP-style epoch
    /// decay) before it is lowered to threaded form. 0 threads every
    /// block at lowering time; [`softcache_sim::THREADED_NEVER`] never
    /// promotes.
    pub threaded_threshold: u32,
    /// Integrity-seal verification and corruption-watchdog knobs
    /// (DESIGN.md §13).
    pub integrity: IntegrityConfig,
    /// Replacement policy on tcache pressure (DESIGN.md §16).
    pub tcache_policy: TcachePolicy,
    /// Instruction budget for a run.
    pub fuel: u64,
}

impl Default for IcacheConfig {
    fn default() -> IcacheConfig {
        IcacheConfig {
            tcache_base: softcache_isa::layout::TCACHE_BASE,
            tcache_size: 48 * 1024,
            link: LinkModel::default(),
            link_policy: LinkPolicy::default(),
            miss_handler_cycles: 60,
            hash_lookup_cycles: 12,
            install_cycles_per_word: 2,
            prefetch_depth: 0,
            superblocks: true,
            chaining: true,
            indirect_ic: true,
            ras_depth: softcache_sim::DEFAULT_RAS_DEPTH,
            threaded: true,
            threaded_threshold: softcache_sim::DEFAULT_THREADED_THRESHOLD,
            integrity: IntegrityConfig::default(),
            tcache_policy: TcachePolicy::default(),
            fuel: 2_000_000_000,
        }
    }
}

/// Cache-controller statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IcacheStats {
    /// Chunks translated (the numerator of the paper's software miss rate).
    pub translations: u64,
    /// Miss stubs executed.
    pub miss_traps: u64,
    /// Computed-jump traps.
    pub hash_traps: u64,
    /// Computed-jump traps that hit the map.
    pub hash_hits: u64,
    /// Full tcache flushes.
    pub flushes: u64,
    /// Live chunks dropped by wholesale flushes and resyncs.
    pub flush_losses: u64,
    /// Individual chunk invalidations.
    pub chunk_invalidations: u64,
    /// Chunks evicted individually by the `Trrip` policy.
    pub evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Allocation-pressure fills serviced by eviction (`Trrip` only).
    pub evict_fills: u64,
    /// Evicted chunks whose pre-fill temperature was hot (RRPV 0).
    pub evicted_hot: u64,
    /// Evicted chunks whose pre-fill temperature was warm (RRPV 1).
    pub evicted_warm: u64,
    /// Evicted chunks whose pre-fill temperature was cold (RRPV 2+).
    pub evicted_cold: u64,
    /// Speculatively pushed chunks evicted before first entry (also
    /// counted in `link.prefetch_wastes`).
    pub evicted_unentered: u64,
    /// Chunks still resident at end of run (settled by
    /// [`Cc::finalize_prefetch`]).
    pub residents: u64,
    /// Patch operations applied (branches re-rewritten).
    pub patches: u64,
    /// Words installed into the tcache.
    pub words_installed: u64,
    /// Return-address slots redirected during invalidation.
    pub ra_redirects: u64,
    /// Cycles spent servicing misses (handler + link stall + install).
    pub miss_cycles: u64,
    /// Link traffic.
    pub link: LinkStats,
    /// Integrity-seal / self-healing ledger (all zero unless faults are
    /// injected or trap-entry verification is armed).
    pub integrity: IntegrityStats,
}

impl IcacheStats {
    /// Mean victims evicted per allocation-pressure fill.
    pub fn victims_per_fill(&self) -> f64 {
        self.evictions as f64 / self.evict_fills.max(1) as f64
    }

    /// Exact install ledger: every translated chunk is accounted exactly
    /// once as still resident, individually evicted, explicitly
    /// invalidated, or lost to a wholesale flush/resync. Holds after
    /// [`Cc::finalize_prefetch`] settles `residents`.
    pub fn install_ledger_balanced(&self) -> bool {
        self.translations
            == self.residents + self.evictions + self.chunk_invalidations + self.flush_losses
    }
}

/// Errors from the softcache runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// A single chunk is larger than the whole tcache.
    ChunkTooBig {
        /// The chunk's size in bytes.
        bytes: u32,
        /// The tcache capacity.
        capacity: u32,
    },
    /// The MC reported an error.
    Mc(u32),
    /// Transport failure.
    Net(NetError),
    /// Protocol violation.
    Proto,
    /// CPU fault.
    Sim(SimError),
    /// Instruction budget exhausted.
    OutOfFuel,
    /// A trap referenced an unknown miss record (corrupted tcache).
    BadMissRecord(u32),
    /// The MC's session epoch changed: it restarted and lost its residence
    /// mirror. The CC must resync (full local invalidate) and retry.
    McRestarted,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::ChunkTooBig { bytes, capacity } => {
                write!(
                    f,
                    "chunk of {bytes} bytes exceeds tcache of {capacity} bytes"
                )
            }
            CacheError::Mc(code) => write!(f, "memory controller error {code}"),
            CacheError::Net(e) => write!(f, "link error: {e}"),
            CacheError::Proto => write!(f, "protocol violation"),
            CacheError::Sim(e) => write!(f, "{e}"),
            CacheError::OutOfFuel => write!(f, "instruction budget exhausted"),
            CacheError::BadMissRecord(idx) => write!(f, "unknown miss record {idx}"),
            CacheError::McRestarted => write!(f, "memory controller restarted (epoch changed)"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<SimError> for CacheError {
    fn from(e: SimError) -> CacheError {
        CacheError::Sim(e)
    }
}

/// First-fit free-list allocator over the tcache region: sorted,
/// coalesced, non-adjacent holes. With the `FlushAll` policy the list
/// always holds one tail hole and degenerates to the paper's bump
/// pointer; eviction punches reusable holes into the middle.
#[derive(Clone, Debug)]
struct FreeList {
    base: u32,
    size: u32,
    /// `(start, len)` holes, sorted by start, never empty-length.
    holes: Vec<(u32, u32)>,
}

impl FreeList {
    fn new(base: u32, size: u32) -> FreeList {
        // Word granularity: an unaligned tail byte count could never hold
        // an instruction, and high-end allocation must stay 4-aligned.
        let size = size & !3;
        FreeList {
            base,
            size,
            holes: vec![(base, size)],
        }
    }

    /// Forget every allocation (the local half of a flush/resync).
    fn reset(&mut self) {
        self.holes.clear();
        self.holes.push((self.base, self.size));
    }

    fn free_bytes(&self) -> u32 {
        self.holes.iter().map(|&(_, l)| l).sum()
    }

    /// The largest hole as `(start, len)` — `len` 0 when full. Ties go to
    /// the lowest address, so a fresh tcache yields its base.
    fn largest(&self) -> (u32, u32) {
        self.holes
            .iter()
            .copied()
            .max_by_key(|&(s, l)| (l, std::cmp::Reverse(s)))
            .unwrap_or((self.base, 0))
    }

    /// First-fit allocation at the lowest address with room. The install
    /// path carves holes directly (`largest` + `alloc_at`); this remains
    /// as the reference allocator exercised by the free-list unit tests.
    #[cfg(test)]
    fn alloc(&mut self, bytes: u32) -> Option<u32> {
        let i = self.holes.iter().position(|&(_, l)| l >= bytes)?;
        let (s, l) = self.holes[i];
        if l == bytes {
            self.holes.remove(i);
        } else {
            self.holes[i] = (s + bytes, l - bytes);
        }
        Some(s)
    }

    /// Allocation from the top of the highest hole with room — used for
    /// redirector words, which collect at the high end of the arena so
    /// the holes eviction opens for chunk-sized fills stay coalescible.
    fn alloc_high(&mut self, bytes: u32) -> Option<u32> {
        let i = self.holes.iter().rposition(|&(_, l)| l >= bytes)?;
        let (s, l) = self.holes[i];
        if l == bytes {
            self.holes.remove(i);
        } else {
            self.holes[i] = (s, l - bytes);
        }
        Some(s + l - bytes)
    }

    /// The hole containing `addr`, if any.
    fn hole_at(&self, addr: u32) -> Option<(u32, u32)> {
        self.holes
            .iter()
            .copied()
            .find(|&(s, l)| s <= addr && addr < s + l)
    }

    /// Carve the exact range `[start, start + bytes)` out of whichever
    /// hole contains it; `false` if no hole does.
    fn alloc_at(&mut self, start: u32, bytes: u32) -> bool {
        let Some(i) = self
            .holes
            .iter()
            .position(|&(s, l)| s <= start && start + bytes <= s + l)
        else {
            return false;
        };
        let (s, l) = self.holes[i];
        let mut repl = Vec::with_capacity(2);
        if start > s {
            repl.push((s, start - s));
        }
        if s + l > start + bytes {
            repl.push((start + bytes, s + l - (start + bytes)));
        }
        self.holes.splice(i..=i, repl);
        true
    }

    /// Return `[start, start + len)` to the list, coalescing neighbours.
    fn release(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let i = self.holes.partition_point(|&(s, _)| s < start);
        self.holes.insert(i, (start, len));
        if i + 1 < self.holes.len() && self.holes[i].0 + self.holes[i].1 == self.holes[i + 1].0 {
            self.holes[i].1 += self.holes[i + 1].1;
            self.holes.remove(i + 1);
        }
        if i > 0 && self.holes[i - 1].0 + self.holes[i - 1].1 == self.holes[i].0 {
            self.holes[i - 1].1 += self.holes[i].1;
            self.holes.remove(i);
        }
    }
}

#[derive(Clone, Debug)]
struct MissRecord {
    orig_target: u32,
    /// Patch site applied once the target is resident.
    patch: Option<(u32, PatchKind)>,
    /// Chunk the patch site lives in (patches are skipped if it died).
    home: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
struct Incoming {
    from_chunk: usize,
    addr: u32,
    kind: PatchKind,
}

#[derive(Clone, Debug)]
struct ChunkInfo {
    orig_start: u32,
    tc_start: u32,
    n_words: u32,
    body_words: u32,
    extra_orig: Vec<u32>,
    incoming: Vec<Incoming>,
    records: Vec<u32>,
    alive: bool,
    /// Installation counter distinguishing reuses of this slot: a miss
    /// record patched against an older installation must not touch a
    /// newer chunk that happens to occupy the same slot.
    epoch: u64,
    /// TRRIP re-reference prediction value: 0 = re-reference imminent,
    /// [`RRPV_MAX`] = distant. Maintained under both policies, consulted
    /// only by `Trrip` victim selection.
    rrpv: u8,
    /// `rrpv` snapshot taken when the current allocation-pressure fill
    /// began — the temperature the eviction histogram records.
    pressure_rrpv: u8,
}

/// A single-word redirector: a return-address trampoline (permanent,
/// shared by `orig`) or a standalone branch-landing stub (retired when
/// its record dies or its branch is patched direct).
#[derive(Clone, Copy, Debug)]
struct Redir {
    addr: u32,
    orig: u32,
    /// Miss-record index encoded in the word — enough metadata to
    /// regenerate a corrupted span without a refetch.
    idx: u32,
    /// `true` for standalone stubs, `false` for RA trampolines. Only
    /// trampolines are reused by target: handing a return address a stub
    /// whose record dies with its home chunk would strand the RA on a
    /// dangling record index.
    stub: bool,
}

/// The cache controller state.
pub struct Cc {
    cfg: IcacheConfig,
    /// tcache map: original pc → tcache address (Figure 4's hash table).
    map: HashMap<u32, u32>,
    chunks: Vec<ChunkInfo>,
    /// Original pc → live chunk slot, kept in lockstep with `map` so the
    /// hot paths can touch temperature without a linear chunk scan.
    chunk_ids: HashMap<u32, usize>,
    records: Vec<Option<MissRecord>>,
    /// Return-address trampolines and standalone stubs. The record
    /// index lets a corrupted single-word span be regenerated purely
    /// from this metadata, no refetch needed.
    trampolines: Vec<Redir>,
    /// tcache allocator (a bump pointer until eviction punches holes).
    free: FreeList,
    /// Dead `chunks` slots available for reuse — under `Trrip` the vec
    /// would otherwise grow (and `chunk_at` slow down) forever.
    free_chunk_slots: Vec<usize>,
    /// Dead `records` slots available for reuse.
    free_record_slots: Vec<u32>,
    /// Monotone installation counter backing `ChunkInfo::epoch`. Never
    /// reset: epochs must stay unique across flushes.
    epoch_counter: u64,
    /// Eviction counter ordering `history` entries.
    evict_seq: u64,
    /// Original pc → `evict_seq` at its last eviction: the re-reference
    /// history that drives hot/warm/cold insertion. Survives flushes —
    /// temperature is a property of the program, not of one tcache
    /// generation.
    history: HashMap<u32, u64>,
    /// Original pc → lifetime re-reference count (map hits, miss traps on
    /// the home site, demand installs and demand-resolved static refs).
    /// Survives evictions and flushes; under pressure the victim
    /// tie-break prefers the chunk whose code has re-referenced least
    /// over the whole run, so the churn concentrates on low-entry-rate
    /// code and the hot loop stays resident.
    heat: HashMap<u32, u64>,
    generation: u64,
    /// Pushed chunks installed but not yet observed entered. An entry
    /// leaves as a *hit* when the program reaches the chunk (miss stub,
    /// hash lookup, or a later demand chunk resolving into it) and as a
    /// *waste* when the chunk dies unentered (flush, resync, invalidation,
    /// end of run).
    pending_prefetch: HashSet<u32>,
    /// Optional banked-SRAM power model (§4): tracks which banks hold live
    /// tcache bytes so unused banks can be gated off.
    power: Option<BankModel>,
    /// CRC-32 seals over every installed span — CC metadata, never
    /// simulated memory (DESIGN.md §13).
    seals: SealTable,
    /// Verify seals at trap entry before redirecting the PC. Armed by
    /// [`Cc::arm_integrity`] or `cfg.integrity.verify_traps`.
    armed: bool,
    /// Watchdog: seal failures per original chunk address. Survives
    /// flushes — resetting it would let a stuck chunk livelock the
    /// retranslate loop across epochs.
    fails: HashMap<u32, u32>,
    /// Chunks pinned to the slow-path interpreter by the watchdog,
    /// keyed by original address so the pin follows reinstallation.
    pinned_origs: HashSet<u32>,
    /// Statistics.
    pub stats: IcacheStats,
}

impl Cc {
    /// Fresh controller.
    pub fn new(cfg: IcacheConfig) -> Cc {
        Cc {
            free: FreeList::new(cfg.tcache_base, cfg.tcache_size),
            armed: cfg.integrity.verify_traps,
            cfg,
            map: HashMap::new(),
            chunks: Vec::new(),
            chunk_ids: HashMap::new(),
            records: Vec::new(),
            trampolines: Vec::new(),
            free_chunk_slots: Vec::new(),
            free_record_slots: Vec::new(),
            epoch_counter: 0,
            evict_seq: 0,
            history: HashMap::new(),
            heat: HashMap::new(),
            generation: 0,
            pending_prefetch: HashSet::new(),
            power: None,
            seals: SealTable::default(),
            fails: HashMap::new(),
            pinned_origs: HashSet::new(),
            stats: IcacheStats::default(),
        }
    }

    /// Arm trap-entry seal verification (done automatically when a
    /// memory-fault plan is injected into a run).
    pub fn arm_integrity(&mut self) {
        self.armed = true;
    }

    /// The tcache address `orig` is currently translated to, if resident.
    pub fn translation_of(&self, orig: u32) -> Option<u32> {
        self.map.get(&orig).copied()
    }

    /// Attach a banked-SRAM power model; installs, flushes and
    /// invalidations will drive its occupancy, and the run loop its access
    /// accounting.
    pub fn attach_power(&mut self, model: BankModel) {
        self.power = Some(model);
    }

    /// The power model, if attached.
    pub fn power(&self) -> Option<&BankModel> {
        self.power.as_ref()
    }

    /// Account one instruction fetch for the power model.
    #[inline]
    pub fn power_access(&mut self, addr: u32, cycle: u64) {
        if let Some(p) = &mut self.power {
            p.access(addr, cycle);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IcacheConfig {
        &self.cfg
    }

    /// Bytes of tcache currently allocated.
    pub fn used_bytes(&self) -> u32 {
        self.cfg.tcache_size - self.free.free_bytes()
    }

    /// Number of live chunks.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.alive).count()
    }

    /// Is `orig` currently translated?
    pub fn is_resident(&self, orig: u32) -> bool {
        self.map.contains_key(&orig)
    }

    fn end(&self) -> u32 {
        self.cfg.tcache_base + self.cfg.tcache_size
    }

    fn rpc(&mut self, ep: &mut McEndpoint, req: &Request) -> Result<(Reply, u64), CacheError> {
        let out = ep.rpc(req)?;
        let stall = self.stats.link.record_attempts(
            &self.cfg.link,
            out.req_bytes,
            out.rep_bytes,
            out.attempts,
            out.backoff,
        );
        self.stats.link.session.absorb(&out.session);
        Ok((out.reply, stall))
    }

    /// Chunk id containing tcache address `addr`, if any.
    fn chunk_at(&self, addr: u32) -> Option<usize> {
        self.chunks
            .iter()
            .position(|c| c.alive && addr >= c.tc_start && addr < c.tc_start + c.n_words * 4)
    }

    /// Map a tcache address back to the original-program resume address.
    fn tc_to_orig(&self, addr: u32) -> Option<u32> {
        if let Some(id) = self.chunk_at(addr) {
            let c = &self.chunks[id];
            let widx = (addr - c.tc_start) / 4;
            return if widx < c.body_words {
                Some(c.orig_start + widx * 4)
            } else {
                c.extra_orig.get((widx - c.body_words) as usize).copied()
            };
        }
        self.trampolines
            .iter()
            .find(|t| t.addr == addr)
            .map(|t| t.orig)
    }

    fn in_tcache(&self, addr: u32) -> bool {
        addr >= self.cfg.tcache_base && addr < self.end()
    }

    /// Ensure the chunk starting at `orig` is resident; returns its tcache
    /// address. On pressure, makes room per the configured policy: evicts
    /// cold victims (`Trrip`) or flushes wholesale (`FlushAll`).
    pub fn ensure(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        if let Some(&tc) = self.map.get(&orig) {
            // A map hit is an observed re-reference: reset temperature.
            if let Some(&cid) = self.chunk_ids.get(&orig) {
                self.chunks[cid].rrpv = RRPV_HOT;
            }
            *self.heat.entry(orig).or_insert(0) += 1;
            if self.pending_prefetch.remove(&orig) {
                self.stats.link.prefetch_hits += 1;
            }
            return Ok(tc);
        }
        // The largest size already made room for this fetch. A refetch can
        // come back *bigger* (the rewritten size depends on the
        // destination), which warrants another round; but once the hole we
        // secured covers the request and the chunk still does not fit,
        // room-making stalled — eviction degraded to a flush, and flushing
        // again cannot help (the fresh tcache keeps its return-address
        // trampolines and pinned spans). Strictly monotone, so the retry
        // loop terminates.
        let mut roomed: u32 = 0;
        let mut batch_ok = self.cfg.prefetch_depth > 0;
        loop {
            let (dest, budget) = self.free.largest();
            let req = if batch_ok {
                Request::FetchBatch {
                    orig_pc: orig,
                    dest,
                    max_chunks: self.cfg.prefetch_depth + 1,
                    budget_bytes: budget,
                }
            } else {
                Request::FetchBlock {
                    orig_pc: orig,
                    dest,
                }
            };
            let (reply, stall) = match self.rpc(ep, &req) {
                Ok(x) => x,
                Err(CacheError::McRestarted) => {
                    // The MC came back empty-handed: nothing it resolved
                    // for us is trustworthy any more. Drop everything
                    // locally and retry this fetch against the fresh MC.
                    self.resync(machine);
                    roomed = 0;
                    continue;
                }
                Err(CacheError::Net(NetError::Timeout)) if batch_ok => {
                    // The batched exchange exhausted its retries. The MC
                    // may well have processed it (our reply lost on the
                    // wire), leaving residence-mirror entries for pushed
                    // chunks we never installed. Flush to clear them, then
                    // degrade to the single-chunk protocol for this miss.
                    // Room-making after a flush cannot free more, so the
                    // retry is also the final fit attempt.
                    self.stats.link.session.batch_fallbacks += 1;
                    batch_ok = false;
                    self.flush(machine, ep)?;
                    roomed = self.cfg.tcache_size;
                    continue;
                }
                Err(e) => return Err(e),
            };
            self.stats.miss_cycles += stall;
            machine.stats.cycles += stall;
            let chunks = match reply {
                Reply::Chunk(c) => vec![c],
                Reply::Batch(cs) if !cs.is_empty() => cs,
                Reply::Err(code) => return Err(CacheError::Mc(code)),
                _ => return Err(CacheError::Proto),
            };
            let bytes = chunks[0].words.len() as u32 * 4;
            if bytes > budget {
                if self.cfg.tcache_policy == TcachePolicy::Trrip {
                    // The fetched chunks will not be installed; clear the
                    // MC's residence mirror for them before re-fetching
                    // at a different destination. (`FlushAll` resolves a
                    // misfit with `InvalidateAll`, which clears them all.)
                    let gen = self.generation;
                    self.abandon_fetch(machine, ep, &chunks)?;
                    if self.generation != gen {
                        // The abandon ran into an MC restart and resynced:
                        // the tcache is empty, start the fetch over.
                        roomed = 0;
                        continue;
                    }
                }
                if bytes > self.cfg.tcache_size || bytes <= roomed {
                    return Err(CacheError::ChunkTooBig {
                        bytes,
                        capacity: budget.min(self.cfg.tcache_size),
                    });
                }
                self.make_room(machine, ep, bytes)?;
                roomed = bytes;
                continue;
            }
            let mut it = chunks.into_iter();
            if it.len() > 1 || batch_ok {
                self.stats.link.batches += 1;
            }
            let demand = it.next().expect("checked non-empty");
            let carved = self.free.alloc_at(dest, bytes);
            debug_assert!(carved, "largest hole must fit a checked demand");
            self.install(machine, demand, dest, self.cfg.miss_handler_cycles, false)?;
            // Opportunistically install the pushed chunks right behind the
            // demanded one. They consume only free space inside the hole
            // the MC was given as its byte budget, so nothing live or
            // pinned is ever evicted to make room for speculation.
            let mut cursor = dest + bytes;
            for chunk in it {
                let d = cursor;
                let bytes = chunk.words.len() as u32 * 4;
                if self.map.contains_key(&chunk.orig_start) || !self.free.alloc_at(d, bytes) {
                    // Unreachable with an honest MC: pushes are budget-
                    // bounded and skip resident chunks.
                    return Err(CacheError::Proto);
                }
                let orig_start = chunk.orig_start;
                self.stats.link.prefetched_chunks += 1;
                self.stats.link.prefetched_bytes += bytes as u64;
                self.install(machine, chunk, d, 0, true)?;
                self.pending_prefetch.insert(orig_start);
                cursor = d + bytes;
            }
            return Ok(dest);
        }
    }

    /// Clear the MC's residence-mirror entries for chunks fetched but not
    /// installed: a stale entry would let later rewrites resolve branches
    /// straight into tcache space we reallocated.
    fn abandon_fetch(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        chunks: &[ChunkPayload],
    ) -> Result<(), CacheError> {
        for c in chunks {
            match self.rpc(
                ep,
                &Request::Invalidate {
                    orig_pc: c.orig_start,
                },
            ) {
                Ok((reply, stall)) => {
                    self.stats.miss_cycles += stall;
                    machine.stats.cycles += stall;
                    if !matches!(reply, Reply::Ack) {
                        return Err(CacheError::Proto);
                    }
                }
                // A restarted MC has an empty mirror — nothing left to
                // abandon; the caller restarts from the resynced state.
                Err(CacheError::McRestarted) => {
                    self.resync(machine);
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Install one rewritten chunk at `dest` (the caller has already
    /// carved `dest` out of the free list). `handler_cycles` is the fixed
    /// trap-servicing cost to charge: the demanded chunk of a fetch pays
    /// `miss_handler_cycles`, a speculatively-pushed chunk pays 0 (no
    /// trap ran for it — only the per-word copy cost applies).
    /// `speculative` selects the insertion temperature: pushed chunks
    /// insert at the distant horizon, demand fetches by refetch history.
    fn install(
        &mut self,
        machine: &mut Machine,
        chunk: ChunkPayload,
        dest: u32,
        handler_cycles: u64,
        speculative: bool,
    ) -> Result<(), CacheError> {
        let n_words = chunk.words.len() as u32;
        machine
            .mem
            .write_words(dest, &chunk.words)
            .expect("tcache region is mapped");
        let id = self.free_chunk_slots.pop().unwrap_or(self.chunks.len());
        let mut record_ids = Vec::with_capacity(chunk.exits.len());
        for exit in &chunk.exits {
            let idx = self.alloc_record(MissRecord {
                orig_target: exit.orig_target,
                patch: Some((dest + exit.patch_slot * 4, exit.kind)),
                home: Some(id),
            });
            record_ids.push(idx);
            machine
                .mem
                .write_u32(dest + exit.stub_slot * 4, encode(Inst::Miss { idx }))
                .expect("stub slot in range");
        }
        // A watchdog-pinned chunk is excluded from superblock lowering:
        // its span runs on the per-instruction slow path wherever it gets
        // reinstalled.
        if self.pinned_origs.contains(&chunk.orig_start) {
            machine.pin_slow_span(dest, dest + n_words * 4);
        }
        // The chunk body and its miss stubs are final: predecode the whole
        // range eagerly (instruction slots + superblocks + chunk-internal
        // successor links), so the first pass through freshly installed
        // code already runs the fast path as one chained trace. A no-op
        // when the superblock engine is off.
        machine.predecode_range(dest, dest + n_words * 4);
        // Seal the finished span — body plus stub words, read back from
        // simulated memory so the seal covers exactly what will execute.
        self.seals.seal(machine, dest, n_words * 4);
        // Insertion temperature: a chunk refetched soon after an eviction
        // is predicted to re-reference imminently; one ever evicted is
        // warm; a first-time fetch is in between; a speculative push has
        // shown no re-reference evidence at all.
        let rrpv = if speculative {
            RRPV_MAX
        } else {
            *self.heat.entry(chunk.orig_start).or_insert(0) += 1;
            let window = REREF_WINDOW;
            match self.history.get(&chunk.orig_start) {
                Some(&seq) if self.evict_seq - seq <= window => RRPV_HOT,
                Some(_) => RRPV_WARM,
                None => RRPV_FRESH,
            }
        };
        self.epoch_counter += 1;
        let info = ChunkInfo {
            orig_start: chunk.orig_start,
            tc_start: dest,
            n_words,
            body_words: chunk.body_words,
            extra_orig: chunk.extra_orig,
            incoming: Vec::new(),
            records: record_ids,
            alive: true,
            epoch: self.epoch_counter,
            rrpv,
            pressure_rrpv: rrpv,
        };
        if id == self.chunks.len() {
            self.chunks.push(info);
        } else {
            self.chunks[id] = info;
        }
        self.map.insert(chunk.orig_start, dest);
        self.chunk_ids.insert(chunk.orig_start, id);
        if let Some(p) = &mut self.power {
            p.occupy(dest, n_words * 4);
        }
        // Incoming pointers the MC resolved at rewrite time.
        for rr in &chunk.resolved {
            if let Some(&tc) = self.map.get(&rr.orig_target) {
                if let Some(tid) = self.chunk_at(tc) {
                    self.chunks[tid].incoming.push(Incoming {
                        from_chunk: id,
                        addr: dest + rr.slot * 4,
                        kind: rr.kind,
                    });
                    if !speculative {
                        // Demand code statically branching into a resident
                        // chunk is about to re-reference it.
                        self.chunks[tid].rrpv = RRPV_HOT;
                        *self.heat.entry(rr.orig_target).or_insert(0) += 1;
                    }
                }
            }
            // A demand chunk resolved straight into a pushed chunk reaches
            // it without ever trapping — count the speculation as paid off
            // now. (Pushed chunks resolving into each other don't count:
            // they are themselves speculative.)
            if handler_cycles != 0 && self.pending_prefetch.remove(&rr.orig_target) {
                self.stats.link.prefetch_hits += 1;
            }
        }
        self.stats.translations += 1;
        self.stats.words_installed += n_words as u64;
        let cycles = handler_cycles + self.cfg.install_cycles_per_word * n_words as u64;
        self.stats.miss_cycles += cycles;
        machine.stats.cycles += cycles;
        Ok(())
    }

    /// Service a `miss` trap: translate the target, patch the site that
    /// missed (rewriting the branch to point at the now-resident block),
    /// and redirect the PC.
    pub fn handle_miss(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        idx: u32,
    ) -> Result<(), CacheError> {
        self.stats.miss_traps += 1;
        let rec = self
            .records
            .get(idx as usize)
            .and_then(|r| r.clone())
            .ok_or(CacheError::BadMissRecord(idx))?;
        // The trap re-referenced the site's home chunk: mark it hot before
        // `ensure` runs victim selection for the target fetch.
        if let Some(c) = rec.home.and_then(|h| self.chunks.get_mut(h)) {
            if c.alive {
                c.rrpv = RRPV_HOT;
                let orig = c.orig_start;
                *self.heat.entry(orig).or_insert(0) += 1;
            }
        }
        let gen_before = self.generation;
        // `ensure` below may evict the home chunk or recycle its slot for
        // a different installation; the per-install epoch distinguishes
        // "still the same chunk" from "same slot, new tenant".
        let home_epoch = rec
            .home
            .and_then(|h| self.chunks.get(h))
            .filter(|c| c.alive)
            .map(|c| c.epoch);
        let target_tc = self.verified_target(machine, ep, rec.orig_target)?;
        // Patch only if no flush intervened and the home chunk survived.
        if self.generation == gen_before && home_epoch.is_some() {
            let home_now = rec
                .home
                .and_then(|h| self.chunks.get(h))
                .filter(|c| c.alive)
                .map(|c| c.epoch);
            if let (Some((addr, kind)), true) = (rec.patch, home_now == home_epoch) {
                self.apply_patch(machine, addr, kind, target_tc)?;
                if let Some(tid) = self.chunk_at(target_tc) {
                    self.chunks[tid].incoming.push(Incoming {
                        from_chunk: rec.home.expect("checked"),
                        addr,
                        kind,
                    });
                }
                // The branch now jumps direct: its standalone landing stub
                // (if the record had one) is unreachable — retire the word
                // and recycle the record. In-chunk stub words stay: their
                // slots remain addressable until the chunk dies.
                if let Some(pos) = self.trampolines.iter().position(|t| t.stub && t.idx == idx) {
                    self.retire_redirector(pos);
                    self.free_record(idx);
                }
            }
        }
        machine.cpu.pc = target_tc;
        Ok(())
    }

    fn apply_patch(
        &mut self,
        machine: &mut Machine,
        addr: u32,
        kind: PatchKind,
        target_tc: u32,
    ) -> Result<(), CacheError> {
        match kind {
            PatchKind::Retarget => {
                let word = machine.mem.read_u32(addr).expect("patch site mapped");
                let patched = cf::retarget(word, addr, target_tc).map_err(|_| CacheError::Proto)?;
                machine.mem.write_u32(addr, patched).expect("mapped");
            }
            PatchKind::ReplaceWord => {
                let j = cf::retarget(encode(Inst::J { off: 0 }), addr, target_tc)
                    .map_err(|_| CacheError::Proto)?;
                machine.mem.write_u32(addr, j).expect("mapped");
            }
        }
        // Re-predecode the patched word immediately — backpatching is the
        // common warm-up write, and the patched site sits in code the
        // client is about to re-enter. (The write bumped the code
        // generation, severing every superblock link; survivors re-chain
        // lazily on their next dispatch.)
        machine.predecode_range(addr, addr + 4);
        // The containing chunk changed legitimately: recompute its seal.
        self.seals.reseal_containing(machine, addr);
        self.stats.patches += 1;
        Ok(())
    }

    /// Service a computed-jump trap (`jrh`/`jalrh`): translate the
    /// original-address target through the map (hash lookup), fetching it
    /// on a miss, and return the tcache address to resume at.
    pub fn hash_jump(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig_target: u32,
    ) -> Result<u32, CacheError> {
        self.stats.hash_traps += 1;
        let cycles = self.cfg.hash_lookup_cycles;
        self.stats.miss_cycles += cycles;
        machine.stats.cycles += cycles;
        if self.map.contains_key(&orig_target) {
            self.stats.hash_hits += 1;
        }
        // `ensure` (inside `verified_target`) settles the prefetch ledger
        // on the map-hit path.
        self.verified_target(machine, ep, orig_target)
    }

    /// [`Cc::ensure`] plus — when integrity verification is armed — a
    /// seal check of the target span *before* the PC is redirected into
    /// it. A corrupted target is quarantined and refetched through the
    /// ordinary miss path, so the trap never lands in corrupted code.
    fn verified_target(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<u32, CacheError> {
        loop {
            let tc = self.ensure(machine, ep, orig)?;
            if !self.armed {
                return Ok(tc);
            }
            let Some((start, _)) = self.seals.containing(tc) else {
                return Ok(tc);
            };
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                return Ok(tc);
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
            // The heal dropped the corrupted translation; go around to
            // refetch a clean copy.
        }
    }

    // ---- invalidation ----

    /// Enumerate return-address locations: the `ra` register plus the
    /// `fp-4` slot of every frame on the fp chain — exactly the stack-walk
    /// the paper's programming-model restrictions make possible.
    fn ra_locations(&self, machine: &Machine) -> Vec<(RaLoc, u32)> {
        let mut out = vec![(RaLoc::Reg, machine.cpu.get(Reg::RA) as u32)];
        let mut fp = machine.cpu.get(Reg::FP) as u32;
        for _ in 0..100_000 {
            if fp == FP_SENTINEL {
                break;
            }
            if !fp.is_multiple_of(4) || !(8..=STACK_TOP).contains(&fp) {
                break; // corrupt chain; stop walking
            }
            let Ok(ra) = machine.mem.read_u32(fp - 4) else {
                break;
            };
            out.push((RaLoc::Mem(fp - 4), ra));
            let Ok(next) = machine.mem.read_u32(fp - 8) else {
                break;
            };
            if next != FP_SENTINEL && next <= fp {
                break; // frames must grow downward; refuse cycles
            }
            fp = next;
        }
        out
    }

    /// Allocate (or reuse) a return-address trampoline for `orig`. Only
    /// true trampolines are reused: a standalone stub's record dies with
    /// its home chunk, so handing its address to a return address would
    /// leave the RA parked on a word whose record can vanish.
    fn trampoline_for(&mut self, machine: &mut Machine, orig: u32) -> Option<u32> {
        if let Some(t) = self.trampolines.iter().find(|t| !t.stub && t.orig == orig) {
            return Some(t.addr);
        }
        let addr = self.free.alloc_high(4)?;
        if let Some(p) = &mut self.power {
            p.occupy(addr, 4);
        }
        let idx = self.alloc_record(MissRecord {
            orig_target: orig,
            patch: None,
            home: None,
        });
        machine
            .mem
            .write_u32(addr, encode(Inst::Miss { idx }))
            .expect("tcache mapped");
        self.trampolines.push(Redir {
            addr,
            orig,
            idx,
            stub: false,
        });
        self.seals.seal(machine, addr, 4);
        Some(addr)
    }

    fn write_ra(&mut self, machine: &mut Machine, loc: RaLoc, value: u32) {
        match loc {
            RaLoc::Reg => machine.cpu.set(Reg::RA, value as i32),
            RaLoc::Mem(addr) => machine
                .mem
                .write_u32(addr, value)
                .expect("stack slot mapped"),
        }
        self.stats.ra_redirects += 1;
    }

    /// Collect live return addresses pointing into the tcache, mapped back
    /// to original-program addresses (must run while the tc→orig mapping
    /// still exists).
    fn collect_tcache_ras(&self, machine: &Machine) -> Vec<(RaLoc, u32)> {
        self.ra_locations(machine)
            .into_iter()
            .filter(|&(_, v)| self.in_tcache(v))
            .filter_map(|(loc, v)| self.tc_to_orig(v).map(|o| (loc, o)))
            .collect()
    }

    /// Drop every chunk, record and trampoline and reset the allocation
    /// pointer — the local half of both [`Cc::flush`] and [`Cc::resync`].
    fn reset_local(&mut self) {
        self.stats.link.prefetch_wastes += self.pending_prefetch.len() as u64;
        self.stats.flush_losses += self.chunks.iter().filter(|c| c.alive).count() as u64;
        self.pending_prefetch.clear();
        self.chunks.clear();
        self.map.clear();
        self.chunk_ids.clear();
        self.records.clear();
        self.trampolines.clear();
        self.free_chunk_slots.clear();
        self.free_record_slots.clear();
        self.seals.clear();
        self.free.reset();
        self.generation += 1;
        if let Some(p) = &mut self.power {
            p.release_all();
        }
    }

    /// Re-point previously collected return addresses at fresh trampolines
    /// in the (now empty) tcache.
    fn retrampoline(&mut self, machine: &mut Machine, pending: Vec<(RaLoc, u32)>) {
        for (loc, orig) in pending {
            let stub = self
                .trampoline_for(machine, orig)
                .expect("fresh tcache has room for trampolines");
            self.write_ra(machine, loc, stub);
        }
    }

    /// Recover from an MC restart: the new MC's mirror is empty, so every
    /// locally cached translation is unverifiable. Drop them all (return
    /// addresses are preserved via trampolines, exactly as in a capacity
    /// flush) and let execution refetch on demand. No RPC is needed — the
    /// fresh MC has nothing to invalidate.
    pub fn resync(&mut self, machine: &mut Machine) {
        let pending = self.collect_tcache_ras(machine);
        self.reset_local();
        self.stats.link.session.resyncs += 1;
        // Every tcache address is about to be recycled: predicted returns
        // into the dead translations would only mispredict, and slow-path
        // pins anchored to dead spans would wrongly slow fresh code (the
        // pinned origs re-pin on reinstall).
        machine.clear_ras();
        machine.clear_slow_pins();
        self.retrampoline(machine, pending);
    }

    /// Flush the entire tcache. Live return addresses are mapped back to
    /// original addresses *before* the state is cleared and redirected to
    /// fresh trampolines after.
    pub fn flush(&mut self, machine: &mut Machine, ep: &mut McEndpoint) -> Result<(), CacheError> {
        let pending = self.collect_tcache_ras(machine);
        self.reset_local();
        self.stats.flushes += 1;
        // As in resync: the whole tcache is recycled, so drop every
        // return-address prediction into it and every slow-path pin
        // anchored to the dead spans.
        machine.clear_ras();
        machine.clear_slow_pins();
        match self.rpc(ep, &Request::InvalidateAll) {
            Ok((reply, stall)) => {
                machine.stats.cycles += stall;
                if !matches!(reply, Reply::Ack) {
                    return Err(CacheError::Proto);
                }
            }
            // A restarted MC has an empty mirror — the invalidation we were
            // about to request already happened, just more thoroughly.
            Err(CacheError::McRestarted) => self.stats.link.session.resyncs += 1,
            Err(e) => return Err(e),
        }
        self.retrampoline(machine, pending);
        Ok(())
    }

    /// Invalidate the single chunk translated from `orig` (the API the
    /// paper's self-modifying-code restriction requires programs to call).
    /// Returns `false` if `orig` was not resident.
    ///
    /// Every pointer that implicitly marked the chunk valid is found and
    /// redirected: incoming branches recorded at patch time are re-pointed
    /// at fresh miss stubs, and return addresses into the chunk are
    /// redirected to trampolines.
    pub fn invalidate_chunk(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        orig: u32,
    ) -> Result<bool, CacheError> {
        let Some(&tc) = self.map.get(&orig) else {
            return Ok(false);
        };
        let Some(cid) = self.chunk_at(tc) else {
            return Ok(false);
        };
        // Counted up front so the install ledger stays exact even if the
        // detach degrades to a flush (the chunk is already unregistered
        // by then, so `flush_losses` will not see it).
        self.stats.chunk_invalidations += 1;
        if self.pending_prefetch.remove(&orig) {
            self.stats.link.prefetch_wastes += 1;
        }
        self.detach_chunk(machine, ep, cid)?;
        Ok(true)
    }

    // ---- eviction (TcachePolicy::Trrip) ----

    /// Make room for an incoming chunk of `bytes`. `FlushAll` is the
    /// paper's wholesale flush; `Trrip` evicts max-RRPV victims (aging
    /// every resident when none sits at the horizon) until the largest
    /// hole fits, degrading to a flush only when protected chunks leave
    /// nothing evictable or fragmentation keeps every hole too small.
    fn make_room(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        bytes: u32,
    ) -> Result<(), CacheError> {
        if self.cfg.tcache_policy == TcachePolicy::FlushAll {
            return self.flush(machine, ep);
        }
        self.stats.evict_fills += 1;
        // Snapshot each resident's temperature before any pressure aging:
        // the eviction histogram records how hot a victim *looked* when
        // the fill began, not the aged value it was selected at.
        for c in self.chunks.iter_mut().filter(|c| c.alive) {
            c.pressure_rrpv = c.rrpv;
        }
        // No guest instruction retires during a fill, so the protected
        // set (executing chunk, live-RA homes, watchdog pins) is stable.
        let protected = self.protected_chunks(machine);
        let gen = self.generation;
        // Seed + grow: the first victim is the globally coldest chunk;
        // while the hole it opened is still too small, prefer evicting
        // its *neighbours* (the more re-reference-distant one when both
        // sides are eligible) so the freed bytes stay contiguous instead
        // of scattering cold holes that never coalesce. When neither
        // neighbour is evictable the policy reseeds globally.
        let mut grow_from: Option<u32> = None;
        loop {
            if self.free.largest().1 >= bytes {
                return Ok(());
            }
            let adjacent = grow_from
                .and_then(|p| self.free.hole_at(p))
                .and_then(|(s, l)| {
                    // Growth may consume warm-or-colder neighbours for the
                    // sake of contiguity, but never a currently-hot chunk:
                    // at pathologically small sizes the retained hot set
                    // is the only thing cutting refetches.
                    let eligible =
                        |i: &usize| !protected.contains(i) && self.chunks[*i].rrpv > RRPV_HOT;
                    let left = s.checked_sub(4).and_then(|a| self.chunk_at(a));
                    let right = self.chunk_at(s + l);
                    match (left.filter(eligible), right.filter(eligible)) {
                        (Some(a), Some(b)) => {
                            let key = |i: usize| {
                                let c = &self.chunks[i];
                                let heat = self.heat.get(&c.orig_start).copied().unwrap_or(0);
                                (std::cmp::Reverse(c.rrpv), heat)
                            };
                            Some(if key(a) <= key(b) { a } else { b })
                        }
                        (x, y) => x.or(y),
                    }
                });
            let victim = match adjacent.or_else(|| self.pick_victim(&protected)) {
                Some(v) => v,
                None => break,
            };
            let victim_start = self.chunks[victim].tc_start;
            self.evict_chunk(machine, ep, victim)?;
            if self.generation != gen {
                // A detach degraded to a flush (or an MC restart forced a
                // resync) and emptied the tcache wholesale.
                return Ok(());
            }
            grow_from = Some(victim_start);
        }
        // Nothing evictable, or the freed bytes never coalesced into a
        // big-enough hole: compact wholesale. The caller's retry decides
        // whether even that was enough.
        self.flush(machine, ep)
    }

    /// The chunks eviction must never select: the chunk the guest pc is
    /// executing in, chunks holding live return addresses (the RA walk),
    /// and watchdog-pinned chunks. Redirectors are not chunks and are
    /// never victims.
    fn protected_chunks(&self, machine: &Machine) -> HashSet<usize> {
        let mut out: HashSet<usize> = self
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive && self.pinned_origs.contains(&c.orig_start))
            .map(|(i, _)| i)
            .collect();
        out.extend(self.chunk_at(machine.cpu.pc));
        for (_, ra) in self.ra_locations(machine) {
            if self.in_tcache(ra) {
                out.extend(self.chunk_at(ra));
            }
        }
        out
    }

    /// TRRIP victim selection: the eligible chunk with the maximum RRPV;
    /// ties fall to the coldest lifetime re-reference count, then the
    /// lowest tcache address. When no eligible chunk sits at the horizon
    /// yet, every resident ages by the shortfall first (the classic RRIP
    /// "increment all" step, batched into one pass).
    fn pick_victim(&mut self, protected: &HashSet<usize>) -> Option<usize> {
        let (mut best, mut best_key) = (None, (0u8, 0u64, 0u32));
        for (i, c) in self.chunks.iter().enumerate() {
            if !c.alive || protected.contains(&i) {
                continue;
            }
            let heat = self.heat.get(&c.orig_start).copied().unwrap_or(0);
            let key = (c.rrpv, u64::MAX - heat, u32::MAX - c.tc_start);
            if best.is_none() || key > best_key {
                best = Some(i);
                best_key = key;
            }
        }
        let victim = best?;
        let delta = RRPV_MAX - best_key.0;
        if delta > 0 {
            for c in self.chunks.iter_mut().filter(|c| c.alive) {
                c.rrpv = (c.rrpv + delta).min(RRPV_MAX);
            }
        }
        Some(victim)
    }

    /// Evict one chunk under the `Trrip` policy: account it, remember its
    /// eviction for re-reference insertion, and detach it exactly like an
    /// explicit invalidation (seal dropped, links severed, redirectors
    /// re-pointed, span reclaimed) — but with no generation bump, so
    /// every surviving translation, patch and trampoline stays live.
    fn evict_chunk(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        cid: usize,
    ) -> Result<(), CacheError> {
        let c = &self.chunks[cid];
        let (orig, span_bytes, temp) = (c.orig_start, c.n_words * 4, c.pressure_rrpv);
        self.stats.evictions += 1;
        self.stats.evicted_bytes += span_bytes as u64;
        match temp {
            RRPV_HOT => self.stats.evicted_hot += 1,
            RRPV_WARM => self.stats.evicted_warm += 1,
            _ => self.stats.evicted_cold += 1,
        }
        if self.pending_prefetch.remove(&orig) {
            self.stats.link.prefetch_wastes += 1;
            self.stats.evicted_unentered += 1;
        }
        self.evict_seq += 1;
        self.history.insert(orig, self.evict_seq);
        self.detach_chunk(machine, ep, cid)?;
        Ok(())
    }

    /// Detach the live chunk `cid` from every pointer that implicitly
    /// marks it valid — the shared core of [`Cc::invalidate_chunk`] (the
    /// paper's SMC API) and policy eviction. The span is handed back to
    /// the allocator *before* incoming sites are re-pointed, so the
    /// replacement stubs and trampolines can land in the hole just freed
    /// and detaching runs out of redirector space only when pins crowd
    /// out the entire tcache. Returns `false` if it still did and the
    /// detach degraded to a wholesale flush.
    fn detach_chunk(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        cid: usize,
    ) -> Result<bool, CacheError> {
        let chunk = self.chunks[cid].clone();
        let orig = chunk.orig_start;
        let span_start = chunk.tc_start;
        let span_bytes = chunk.n_words * 4;

        // Resolve live return addresses inside the dying span back to
        // original targets while the tc→orig mapping still exists.
        let span = span_start..span_start + span_bytes;
        let ra_pending: Vec<(RaLoc, u32)> = self
            .ra_locations(machine)
            .into_iter()
            .filter(|(_, v)| span.contains(v))
            .filter_map(|(loc, v)| self.tc_to_orig(v).map(|o| (loc, o)))
            .collect();

        // Unregister the chunk and reclaim its span.
        self.chunks[cid].alive = false;
        self.map.remove(&orig);
        self.chunk_ids.remove(&orig);
        self.seals.unseal(span_start);
        if self.pinned_origs.contains(&orig) {
            machine.unpin_slow_span(span_start, span_start + span_bytes);
        }
        // Host-side hygiene: drop cached decodes and superblocks over the
        // span without a generation bump. Survivors keep their chain
        // links — every route into the dead span is severed below (or was
        // already write-barriered by the re-pointing itself).
        machine.invalidate_code_span(span_start, span_start + span_bytes);
        if let Some(p) = &mut self.power {
            p.release(span_start, span_bytes);
        }
        self.free.release(span_start, span_bytes);

        // 1. Re-point incoming sites at fresh miss stubs.
        for inc in &chunk.incoming {
            if !self
                .chunks
                .get(inc.from_chunk)
                .map(|c| c.alive)
                .unwrap_or(false)
            {
                continue;
            }
            let idx = self.alloc_record(MissRecord {
                orig_target: orig,
                patch: Some((inc.addr, inc.kind)),
                home: Some(inc.from_chunk),
            });
            self.chunks[inc.from_chunk].records.push(idx);
            match inc.kind {
                PatchKind::ReplaceWord => {
                    machine
                        .mem
                        .write_u32(inc.addr, encode(Inst::Miss { idx }))
                        .expect("mapped");
                }
                PatchKind::Retarget => {
                    // A branch needs somewhere to land: allocate a stub.
                    let Some(stub) = self.alloc_stub(machine, idx) else {
                        // No room for a stub: degrade to a full flush.
                        self.flush(machine, ep)?;
                        return Ok(false);
                    };
                    let word = machine.mem.read_u32(inc.addr).expect("mapped");
                    let patched =
                        cf::retarget(word, inc.addr, stub).map_err(|_| CacheError::Proto)?;
                    machine.mem.write_u32(inc.addr, patched).expect("mapped");
                }
            }
            // The site's home chunk changed legitimately: reseal it.
            self.seals.reseal_containing(machine, inc.addr);
        }

        // 2. Redirect return addresses pointing into the dead span.
        for (loc, target) in ra_pending {
            match self.trampoline_for(machine, target) {
                Some(stub) => self.write_ra(machine, loc, stub),
                None => {
                    self.flush(machine, ep)?;
                    return Ok(false);
                }
            }
        }

        // 3. Kill the chunk's records (retiring their standalone stubs),
        //    prune its incoming entries elsewhere, recycle the slot.
        self.kill_records_of(cid);
        for other in self.chunks.iter_mut() {
            other.incoming.retain(|i| i.from_chunk != cid);
        }
        self.free_chunk_slots.push(cid);

        match self.rpc(ep, &Request::Invalidate { orig_pc: orig }) {
            Ok((reply, stall)) => {
                machine.stats.cycles += stall;
                if !matches!(reply, Reply::Ack) {
                    return Err(CacheError::Proto);
                }
            }
            // The MC restarted: the chunk is gone from its mirror along
            // with everything else. Resync the rest of our state too.
            Err(CacheError::McRestarted) => self.resync(machine),
            Err(e) => return Err(e),
        }
        Ok(true)
    }

    /// Allocate a miss record, reusing a dead slot when one exists.
    fn alloc_record(&mut self, rec: MissRecord) -> u32 {
        match self.free_record_slots.pop() {
            Some(i) => {
                self.records[i as usize] = Some(rec);
                i
            }
            None => {
                self.records.push(Some(rec));
                self.records.len() as u32 - 1
            }
        }
    }

    /// Kill record `idx` and make its slot reusable. Idempotent: a slot
    /// already dead (e.g. freed early by a patch-time stub retirement and
    /// still listed by its home chunk) is left alone.
    fn free_record(&mut self, idx: u32) {
        if self.records[idx as usize].take().is_some() {
            self.free_record_slots.push(idx);
        }
    }

    /// Kill every record the dead chunk `cid` still owns, retiring their
    /// standalone landing stubs. Records whose slot was recycled to a
    /// different home are skipped — they belong to someone else now.
    fn kill_records_of(&mut self, cid: usize) {
        let ridxs = std::mem::take(&mut self.chunks[cid].records);
        for ridx in ridxs {
            let belongs = self.records[ridx as usize]
                .as_ref()
                .is_some_and(|r| r.home == Some(cid));
            if !belongs {
                continue;
            }
            self.free_record(ridx);
            if let Some(pos) = self
                .trampolines
                .iter()
                .position(|t| t.stub && t.idx == ridx)
            {
                self.retire_redirector(pos);
            }
        }
    }

    /// Remove redirector `pos` (a standalone stub) and hand its word back
    /// to the allocator. RA trampolines are never retired — a return
    /// address may hold their address indefinitely. The stale word stays
    /// in simulated memory until the hole is reused, at which point the
    /// code-write barrier invalidates any cached decode of it.
    fn retire_redirector(&mut self, pos: usize) {
        let t = self.trampolines.remove(pos);
        self.seals.unseal(t.addr);
        self.free.release(t.addr, 4);
    }

    /// Settle the speculation ledger at the end of a run: pushed chunks
    /// never observed entered are counted as wasted. After this,
    /// `prefetch_hits + prefetch_wastes == prefetched_chunks`.
    pub fn finalize_prefetch(&mut self) {
        self.stats.link.prefetch_wastes += self.pending_prefetch.len() as u64;
        self.pending_prefetch.clear();
        // Settle the install ledger: every translation is now resident,
        // evicted, invalidated, or flush-lost — exactly once.
        self.stats.residents = self.chunks.iter().filter(|c| c.alive).count() as u64;
    }

    /// Allocate a standalone miss-stub word for record `idx`.
    fn alloc_stub(&mut self, machine: &mut Machine, idx: u32) -> Option<u32> {
        let addr = self.free.alloc_high(4)?;
        machine
            .mem
            .write_u32(addr, encode(Inst::Miss { idx }))
            .expect("tcache mapped");
        // Record for the RA walker: resuming at a stub re-enters via its
        // miss record's target.
        let orig = self.records[idx as usize]
            .as_ref()
            .map(|r| r.orig_target)
            .unwrap_or(0);
        self.trampolines.push(Redir {
            addr,
            orig,
            idx,
            stub: true,
        });
        self.seals.seal(machine, addr, 4);
        Some(addr)
    }

    // ---- integrity: verification, healing, fault injection ----

    /// Verify every sealed span against simulated memory and heal any
    /// mismatch: corrupted chunks are quarantined and left to refetch
    /// through the ordinary miss path; corrupted trampoline/stub words
    /// are regenerated from CC metadata. Called after every injection
    /// checkpoint — before the guest resumes — so no corrupted
    /// instruction ever retires; the armed trap-entry checks are
    /// defense-in-depth on top.
    pub fn verify_and_heal(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
    ) -> Result<(), CacheError> {
        for start in self.seals.starts() {
            // An earlier heal this pass (quarantine, or its degrade-to-
            // flush) may have dropped this span already.
            if !self.seals.sealed_at(start) {
                continue;
            }
            self.stats.integrity.seals_checked += 1;
            if self.seals.verify(machine, start) {
                self.stats.integrity.seal_hits += 1;
                continue;
            }
            self.stats.integrity.violations += 1;
            self.heal_span(machine, ep, start)?;
        }
        Ok(())
    }

    /// Recover the corrupted sealed span starting at `start`. Exactly one
    /// of `retranslations` / `slow_path_pins` is incremented per call,
    /// keeping the ledger invariant exact.
    fn heal_span(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        start: u32,
    ) -> Result<(), CacheError> {
        if let Some(cid) = self.chunk_at(start) {
            let orig = self.chunks[cid].orig_start;
            let fails = self.fails.entry(orig).or_insert(0);
            *fails += 1;
            let newly_pinned =
                *fails > self.cfg.integrity.watchdog_threshold && self.pinned_origs.insert(orig);
            if newly_pinned {
                // Watchdog: this chunk keeps failing its seal — degrade
                // it to the slow-path interpreter wherever it lands next
                // instead of optimistically retranslating forever.
                self.stats.integrity.slow_path_pins += 1;
            } else {
                self.stats.integrity.retranslations += 1;
            }
            self.stats.integrity.quarantines += 1;
            // Quarantine: sever every pointer that marks the chunk valid
            // (incoming branches, return addresses, map entry, records),
            // drop predicted returns into the dying span, and tell the
            // MC. The next entry refetches a clean copy on the ordinary
            // miss path.
            machine.clear_ras();
            self.invalidate_chunk(machine, ep, orig)?;
        } else if let Some(&Redir { addr, idx, .. }) =
            self.trampolines.iter().find(|t| t.addr == start)
        {
            // A single-word trampoline/stub: regenerate it from CC
            // metadata — no refetch needed.
            machine
                .mem
                .write_u32(addr, encode(Inst::Miss { idx }))
                .expect("tcache mapped");
            machine.predecode_range(addr, addr + 4);
            self.seals.seal(machine, addr, 4);
            self.stats.integrity.retranslations += 1;
        } else {
            // Unreachable with consistent metadata: drop the orphan seal.
            self.seals.unseal(start);
            self.stats.integrity.retranslations += 1;
        }
        Ok(())
    }

    /// One fault-injection checkpoint: consume the plan's rolls, apply
    /// any bit flips through simulated memory (the write barrier bumps
    /// the code generation, modelling a refetch from the corrupted
    /// SRAM), then scrub-and-heal before the guest resumes.
    pub fn chaos_tick(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        inj: &mut MemFaultInjector,
    ) -> Result<(), CacheError> {
        let fire = inj.begin_tick();
        if !fire.any() {
            return Ok(());
        }
        // Resolve the guest pc to its original address BEFORE anything is
        // corrupted: if healing quarantines the very chunk being executed,
        // execution is re-routed through the ordinary miss path.
        let pc_orig = self.tc_to_orig(machine.cpu.pc);
        if fire.code {
            self.inject_code_flip(machine, inj);
        }
        if fire.redirector {
            self.inject_redirector_flip(machine, inj);
        }
        self.verify_and_heal(machine, ep)?;
        self.fixup_pc(machine, ep, pc_orig)?;
        Ok(())
    }

    /// Like [`Cc::chaos_tick`], but also lands scheduled dcache flips in
    /// the software data cache and scrubs it — the full-system
    /// ("all-at-once") injection checkpoint.
    pub fn chaos_tick_full(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        inj: &mut MemFaultInjector,
        dcache: &mut crate::dcache::Dcache,
    ) -> Result<(), CacheError> {
        let fire = inj.begin_tick();
        if !fire.any() {
            return Ok(());
        }
        let pc_orig = self.tc_to_orig(machine.cpu.pc);
        if fire.code {
            self.inject_code_flip(machine, inj);
        }
        if fire.redirector {
            self.inject_redirector_flip(machine, inj);
        }
        if fire.dcache && dcache.inject_flip(inj) {
            self.stats.integrity.dcache_flips += 1;
        }
        self.verify_and_heal(machine, ep)?;
        self.fixup_pc(machine, ep, pc_orig)?;
        if fire.dcache {
            let (checked, violations) = dcache.scrub();
            self.stats.integrity.seals_checked += checked;
            self.stats.integrity.seal_hits += checked - violations;
            self.stats.integrity.violations += violations;
            // A dropped clean line refills from the server on next
            // access — the data-side analogue of a retranslation.
            self.stats.integrity.retranslations += violations;
        }
        Ok(())
    }

    /// After a heal pass, re-route the guest pc if the span it was
    /// executing in was quarantined out from under it. `pc_orig` is the
    /// pre-heal resolution of the pc to its original-program address.
    fn fixup_pc(
        &mut self,
        machine: &mut Machine,
        ep: &mut McEndpoint,
        pc_orig: Option<u32>,
    ) -> Result<(), CacheError> {
        let pc = machine.cpu.pc;
        if self.chunk_at(pc).is_some() {
            return Ok(()); // still inside a live chunk
        }
        if self.trampolines.iter().any(|t| t.addr == pc) {
            return Ok(()); // trampolines/stubs heal in place
        }
        let Some(orig) = pc_orig else {
            return Ok(()); // pc was never in translated code
        };
        machine.cpu.pc = self.ensure(machine, ep, orig)?;
        Ok(())
    }

    /// Flip one seeded bit in an installed chunk (or in the plan's stuck
    /// chunk, if resident).
    fn inject_code_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        let addr = if let Some(orig) = inj.plan.stuck_orig {
            let Some(cid) = self
                .map
                .get(&orig)
                .copied()
                .and_then(|tc| self.chunk_at(tc))
            else {
                return;
            };
            let c = &self.chunks[cid];
            c.tc_start + inj.pick(c.n_words as u64) as u32 * 4
        } else {
            let total: u64 = self
                .chunks
                .iter()
                .filter(|c| c.alive)
                .map(|c| c.n_words as u64)
                .sum();
            if total == 0 {
                return;
            }
            let mut k = inj.pick(total);
            let mut addr = 0;
            for c in self.chunks.iter().filter(|c| c.alive) {
                if k < c.n_words as u64 {
                    addr = c.tc_start + k as u32 * 4;
                    break;
                }
                k -= c.n_words as u64;
            }
            addr
        };
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.code_flips += 1;
    }

    /// Flip one seeded bit in a trampoline / standalone-stub word.
    fn inject_redirector_flip(&mut self, machine: &mut Machine, inj: &mut MemFaultInjector) {
        if self.trampolines.is_empty() {
            return;
        }
        let k = inj.pick(self.trampolines.len() as u64) as usize;
        let addr = self.trampolines[k].addr;
        self.flip_bit(machine, addr, inj);
        self.stats.integrity.redirector_flips += 1;
    }

    fn flip_bit(&mut self, machine: &mut Machine, addr: u32, inj: &mut MemFaultInjector) {
        let word = machine.mem.read_u32(addr).expect("tcache mapped");
        let flipped = word ^ (1u32 << inj.pick(32));
        machine.mem.write_u32(addr, flipped).expect("tcache mapped");
    }
}

#[derive(Clone, Copy, Debug)]
enum RaLoc {
    Reg,
    Mem(u32),
}

#[cfg(test)]
mod tests {
    use super::FreeList;

    #[test]
    fn free_list_is_a_bump_pointer_until_released_into() {
        let mut f = FreeList::new(0x1000, 0x100);
        assert_eq!(f.largest(), (0x1000, 0x100));
        assert_eq!(f.alloc(0x40), Some(0x1000));
        assert_eq!(f.alloc(4), Some(0x1040));
        assert_eq!(f.largest(), (0x1044, 0xbc));
        assert_eq!(f.free_bytes(), 0xbc);
    }

    #[test]
    fn free_list_release_coalesces_both_sides() {
        let mut f = FreeList::new(0, 0x100);
        assert!(f.alloc_at(0x00, 0x40));
        assert!(f.alloc_at(0x40, 0x40));
        assert!(f.alloc_at(0x80, 0x40));
        // Free the outer two: the upper one coalesces with the tail hole.
        f.release(0x00, 0x40);
        f.release(0x80, 0x40);
        assert_eq!(f.holes, vec![(0x00, 0x40), (0x80, 0x80)]);
        assert_eq!(f.largest(), (0x80, 0x80));
        // Freeing the middle merges all three into one arena-sized hole.
        f.release(0x40, 0x40);
        assert_eq!(f.holes, vec![(0x00, 0x100)]);
    }

    #[test]
    fn free_list_largest_prefers_lowest_address_on_ties() {
        let mut f = FreeList::new(0, 0x100);
        assert!(f.alloc_at(0x40, 0x40)); // holes: [0,0x40) and [0x80,0x100)
        assert!(f.alloc_at(0xc0, 0x40)); // holes: [0,0x40) and [0x80,0xc0)
        assert_eq!(f.largest(), (0x00, 0x40));
    }

    #[test]
    fn free_list_alloc_at_rejects_straddles_and_taken_ranges() {
        let mut f = FreeList::new(0, 0x100);
        assert!(f.alloc_at(0x20, 0x20));
        assert!(!f.alloc_at(0x10, 0x20), "straddles a taken range");
        assert!(!f.alloc_at(0x20, 0x10), "already taken");
        assert!(f.alloc_at(0x00, 0x20));
        assert!(f.alloc_at(0x40, 0xc0));
        assert_eq!(f.free_bytes(), 0);
        assert_eq!(f.largest().1, 0);
        assert_eq!(f.alloc(4), None);
    }

    #[test]
    fn free_list_first_fit_lands_in_earliest_hole_with_room() {
        let mut f = FreeList::new(0, 0x100);
        assert!(f.alloc_at(0x00, 0x10));
        assert!(f.alloc_at(0x20, 0xd0)); // hole [0x10,0x20) then tail [0xf0,0x100)
        assert_eq!(f.alloc(0x20), None);
        assert_eq!(f.alloc(0x10), Some(0x10));
        assert_eq!(f.alloc(0x10), Some(0xf0));
    }
}
