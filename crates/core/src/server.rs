//! Multi-client MC server — threaded or event-driven.
//!
//! One memory controller process serving N embedded clients from a single
//! shared program image — the fan-in configuration the paper's server-side
//! rewriting cost argument points toward ("the (relatively unconstrained)
//! server", §1). Each client connection gets its own [`Mc`]: the residence
//! mirror is per-client state (every CC has its own tcache layout), while
//! the immutable text segment is shared through an [`Arc`] and chunk
//! *translations* are shared through a [`SharedXlate`] — the first client
//! to need a chunk pays the rewrite, every later client with the same
//! mirror context gets the cached bytes. Data memory is also per-client,
//! so one client's stores can never leak into another's run — per-client
//! outputs are byte-identical to single-client runs.
//!
//! Two serving modes:
//!
//! * [`McServer::serve_clients`] — one thread per client (the original
//!   fan-in shape). Simple, but a thousand clients means a thousand
//!   stacks and a thousand blocked `recv` calls.
//! * [`McServer::serve_event`] — one poll loop over every client's
//!   nonblocking [`Transport::try_recv`], multiplexing all per-client
//!   session state (sequence/epoch, duplicate suppression, batch
//!   budgets) from a single thread, with fair-share scheduling and
//!   admission control ([`ServeQuotas`]). This is the shape that scales
//!   to 1k+ clients.

use crate::endpoint::{absorb_mc_stats, frame_reply, serve, ServeReport};
use crate::mc::{ChunkStrategy, Mc};
use crate::xlate::{SharedXlate, XlateStats};
use softcache_isa::image::Image;
use softcache_net::{ReadySet, Transport};
use std::sync::Arc;
use std::time::Duration;

/// Per-client scheduling and admission quotas for
/// [`McServer::serve_event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeQuotas {
    /// Requests served per client per poll round before the loop moves
    /// on — fair-share batching so one chatty client cannot starve the
    /// rest of the round.
    pub fair_share: u32,
    /// Queued frames a client may accumulate; the excess beyond this is
    /// shed unprocessed (counted as admission rejections) instead of
    /// growing an unbounded queue. Shedding is safe: a well-behaved CC
    /// has at most one exchange in flight, so only a flooding client
    /// ever exceeds a sane bound, and its session retry layer recovers
    /// exactly as from wire loss.
    pub max_pending: usize,
}

impl Default for ServeQuotas {
    fn default() -> ServeQuotas {
        ServeQuotas {
            fair_share: 8,
            max_pending: 64,
        }
    }
}

/// A multi-client MC server over one shared program image.
pub struct McServer {
    image: Arc<Image>,
    epoch: u32,
    strategy: ChunkStrategy,
    shared: Arc<SharedXlate>,
    quotas: ServeQuotas,
}

impl McServer {
    /// Server over `image`, epoch 1, basic-block chunks, an
    /// amply-budgeted shared translation cache and default quotas.
    pub fn new(image: Image) -> McServer {
        McServer {
            image: Arc::new(image),
            epoch: 1,
            strategy: ChunkStrategy::BasicBlock,
            shared: Arc::new(SharedXlate::default()),
            quotas: ServeQuotas::default(),
        }
    }

    /// Set the session epoch handed to every per-client MC.
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Set the chunk-formation strategy for every per-client MC.
    pub fn set_strategy(&mut self, strategy: ChunkStrategy) {
        self.strategy = strategy;
    }

    /// Replace the per-client quotas used by [`McServer::serve_event`].
    pub fn set_quotas(&mut self, quotas: ServeQuotas) {
        assert!(quotas.fair_share >= 1, "a round must serve something");
        self.quotas = quotas;
    }

    /// The shared image (for spinning up clients against the same text).
    pub fn image(&self) -> Arc<Image> {
        Arc::clone(&self.image)
    }

    /// Snapshot the shared translation cache's translate-once ledger.
    pub fn xlate_stats(&self) -> XlateStats {
        self.shared.stats()
    }

    /// One per-client tenant `Mc`, attached to the shared cache.
    fn tenant_mc(&self) -> Mc {
        let mut mc = Mc::from_shared(Arc::clone(&self.image));
        mc.set_epoch(self.epoch);
        mc.set_strategy(self.strategy);
        mc.attach_shared_cache(Arc::clone(&self.shared));
        mc
    }

    /// Serve one client per transport until each disconnects, one thread
    /// per client (`std::thread::scope`), and return the per-client serve
    /// reports in the same order as `transports`. All threads translate
    /// through the shared cache; the cache lock is held across each
    /// translation, so racing tenants never duplicate one.
    pub fn serve_clients(&self, transports: Vec<Box<dyn Transport>>) -> Vec<ServeReport> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = transports
                .into_iter()
                .map(|mut t| {
                    scope.spawn(move || {
                        let mut mc = self.tenant_mc();
                        serve(&mut mc, t.as_mut())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client serve thread panicked"))
                .collect()
        })
    }

    /// Serve every client from **one** poll loop until all disconnect,
    /// and return the per-client serve reports in the same order as
    /// `transports`.
    ///
    /// When every transport supports [`Transport::register_ready`], the
    /// loop is edge-triggered: it blocks on a [`ReadySet`] and serves
    /// only the clients whose transports marked themselves ready, so a
    /// round costs O(active clients) no matter how many are connected.
    /// Otherwise (e.g. fault-injection wrappers, whose delayed frames
    /// surface on `recv` calls rather than queue pushes) it falls back
    /// to scanning every live client per round, with an idle backoff
    /// (yield, then a short sleep) when nothing moved.
    ///
    /// Serving a client measures its queue depth (high-water mark in
    /// [`ServeReport::queue_hwm`]), sheds any backlog beyond
    /// [`ServeQuotas::max_pending`]
    /// ([`ServeReport::admission_rejections`]), then answers up to
    /// [`ServeQuotas::fair_share`] requests via the nonblocking
    /// [`Transport::try_recv`].
    ///
    /// Replies are produced by the same `frame_reply` path as the
    /// threaded mode, over per-client `Mc` state, so the two modes are
    /// byte-identical from any client's point of view.
    pub fn serve_event(&self, transports: Vec<Box<dyn Transport>>) -> Vec<ServeReport> {
        let mut tenants: Vec<Tenant> = transports
            .into_iter()
            .map(|transport| Tenant {
                transport,
                mc: self.tenant_mc(),
                last: None,
                report: ServeReport::default(),
                live: true,
            })
            .collect();
        let mut live = tenants.len();

        let set = ReadySet::new();
        let evented = tenants
            .iter_mut()
            .enumerate()
            .all(|(token, tn)| tn.transport.register_ready(&set, token));
        if evented {
            while live > 0 {
                let drained = set.drain_wait(Duration::from_millis(100));
                if drained.is_empty() {
                    // Idle tick: nothing was ready for a full wait. Sweep
                    // for lost wakeups — a live tenant with frames queued
                    // but no mark can only mean its transport broke the
                    // register_ready contract (marks accompany pushes
                    // under the channel lock, so there is no benign race
                    // that leaves this state). Rescue it rather than let
                    // the client stall into its retransmit timeout, and
                    // count the rescue so tests can assert it never
                    // happens for well-behaved transports.
                    for (token, tn) in tenants.iter_mut().enumerate() {
                        if tn.live && tn.transport.pending() > 0 && !set.is_marked(token) {
                            tn.report.lost_wakeups += 1;
                            set.mark(token);
                        }
                    }
                    continue;
                }
                for token in drained {
                    let tn = &mut tenants[token];
                    if !tn.live {
                        continue;
                    }
                    let (_, saturated) = tn.poll(self.quotas);
                    if !tn.live {
                        live -= 1;
                        continue;
                    }
                    // Edge residue: a poll that spent its whole fair
                    // share without running dry may have left frames —
                    // or an unobserved hangup — behind it, and nothing
                    // will re-mark what was already queued before the
                    // drain. Requeue the token ourselves.
                    if saturated {
                        set.mark(token);
                    }
                }
            }
        } else {
            let mut idle_rounds = 0u32;
            while live > 0 {
                let mut moved = false;
                for tn in tenants.iter_mut().filter(|tn| tn.live) {
                    let (tn_moved, _) = tn.poll(self.quotas);
                    moved |= tn_moved;
                    if !tn.live {
                        live -= 1;
                    }
                }
                if moved {
                    idle_rounds = 0;
                } else {
                    // Nothing anywhere: every live client is thinking.
                    // Spin politely first (replies are usually wanted
                    // soon), then back off so a big idle fleet does not
                    // burn a core.
                    idle_rounds += 1;
                    if idle_rounds < 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
        tenants.into_iter().map(|tn| tn.report).collect()
    }
}

/// Per-client state multiplexed by [`McServer::serve_event`].
struct Tenant {
    transport: Box<dyn Transport>,
    mc: Mc,
    last: Option<(u32, Vec<u8>)>,
    report: ServeReport,
    live: bool,
}

impl Tenant {
    /// One service round for this client: admission shed, then up to a
    /// fair share of replies. Flips `live` off on hangup. Returns
    /// `(moved, saturated)`: whether any frame moved, and whether the
    /// round spent its entire fair share without the queue running dry —
    /// i.e. there may be more behind it that no send will announce.
    fn poll(&mut self, quotas: ServeQuotas) -> (bool, bool) {
        let before = self.mc.stats;
        let mut moved = false;
        let mut hangup = false;
        let mut saturated = true;
        // Admission control: bound the backlog before serving it.
        let depth = self.transport.pending();
        self.report.queue_hwm = self.report.queue_hwm.max(depth as u64);
        let mut shed = depth.saturating_sub(quotas.max_pending);
        while shed > 0 {
            match self.transport.try_recv() {
                Ok(Some(_)) => {
                    self.report.admission_rejections += 1;
                    moved = true;
                    shed -= 1;
                }
                Ok(None) => break,
                Err(_) => {
                    hangup = true;
                    break;
                }
            }
        }
        // Fair share: at most this many answers per round.
        for _ in 0..quotas.fair_share {
            if hangup {
                break;
            }
            match self.transport.try_recv() {
                Ok(Some(frame)) => {
                    moved = true;
                    if let Some(wire) =
                        frame_reply(&mut self.mc, &mut self.last, &frame, &mut self.report)
                    {
                        if self.transport.send(wire).is_err() {
                            hangup = true;
                        }
                    }
                }
                Ok(None) => {
                    saturated = false;
                    break;
                }
                Err(_) => hangup = true,
            }
        }
        absorb_mc_stats(&mut self.report, &self.mc, &before);
        if hangup {
            self.report.disconnected = true;
            self.live = false;
            moved = true;
        }
        (moved, saturated && !hangup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::IcacheConfig;
    use crate::endpoint::McEndpoint;
    use crate::icache::SoftIcacheSystem;
    use softcache_minic as minic;
    use softcache_net::{policy_pair, LinkPolicy};

    const SRC: &str = r#"
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 40; i = i + 1) { s = s + i * i; puti(s); putc(' '); }
    return s & 0x7f;
}
"#;

    /// A wrapper that hides readiness support: `register_ready` stays
    /// the declining default, forcing `serve_event` onto its scan
    /// fallback, while `try_recv` stays genuinely non-blocking.
    struct Opaque(Box<dyn Transport>);

    impl Transport for Opaque {
        fn send(&mut self, frame: Vec<u8>) -> Result<(), softcache_net::NetError> {
            self.0.send(frame)
        }
        fn recv(&mut self) -> Result<Vec<u8>, softcache_net::NetError> {
            self.0.recv()
        }
        fn pending(&self) -> usize {
            self.0.pending()
        }
        fn try_recv(&mut self) -> Result<Option<Vec<u8>>, softcache_net::NetError> {
            self.0.try_recv()
        }
    }

    fn run_fleet(
        event_driven: bool,
        n: usize,
        opaque: bool,
    ) -> (crate::icache::RunOutput, Vec<ServeReport>, XlateStats) {
        let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();

        // Single-client reference run.
        let mut solo = SoftIcacheSystem::new(image.clone(), IcacheConfig::default());
        let want = solo.run(&[]).unwrap();

        let server = McServer::new(image.clone());
        let policy = LinkPolicy::default();
        let mut server_ends: Vec<Box<dyn Transport>> = Vec::new();
        let mut client_ends = Vec::new();
        for _ in 0..n {
            let (cc_t, mc_t) = policy_pair(&policy);
            if opaque {
                server_ends.push(Box::new(Opaque(Box::new(mc_t))));
            } else {
                server_ends.push(Box::new(mc_t));
            }
            client_ends.push(cc_t);
        }
        let reports = std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| {
                if event_driven {
                    server.serve_event(server_ends)
                } else {
                    server.serve_clients(server_ends)
                }
            });
            let clients: Vec<_> = client_ends
                .into_iter()
                .map(|cc_t| {
                    let image = image.clone();
                    scope.spawn(move || {
                        let mut sys = SoftIcacheSystem::with_endpoint(
                            image,
                            IcacheConfig::default(),
                            McEndpoint::remote(Box::new(cc_t)),
                        );
                        sys.run(&[]).unwrap()
                    })
                })
                .collect();
            for (i, c) in clients.into_iter().enumerate() {
                let out = c.join().unwrap();
                assert_eq!(out.exit_code, want.exit_code, "client {i}");
                assert_eq!(out.output, want.output, "client {i}");
            }
            server_thread.join().unwrap()
        });
        (want, reports, server.xlate_stats())
    }

    #[test]
    fn serves_concurrent_clients_byte_identically() {
        let (_, reports, xs) = run_fleet(false, 4, false);
        assert_eq!(reports.len(), 4);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.served > 0, "client {i} was served");
            assert!(r.disconnected, "client {i} hung up cleanly");
        }
        // Translate-once across the threaded fleet: the cache lock is
        // held across each translation, so even racing tenants never
        // duplicate one. Identical fetch orders mean no variants.
        assert!(xs.balanced());
        assert_eq!(
            xs.unique_translations,
            xs.unique_chunks + xs.variant_translations
        );
        assert_eq!(xs.evictions, 0);
        let translated: u64 = reports.iter().map(|r| r.shared_misses).sum();
        assert_eq!(translated, xs.unique_translations);
        let hits: u64 = reports.iter().map(|r| r.shared_hits).sum();
        assert!(hits > 0, "later clients reuse the first one's work");
    }

    #[test]
    fn event_loop_matches_threaded_serving() {
        let (_, reports, xs) = run_fleet(true, 6, false);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.served > 0, "client {i} was served");
            assert!(r.disconnected, "client {i} hung up cleanly");
            assert_eq!(r.admission_rejections, 0, "serial clients never flood");
        }
        // Serial-RPC clients have at most one request queued.
        assert!(reports.iter().all(|r| r.queue_hwm <= 1));
        assert!(xs.balanced());
        assert_eq!(xs.variant_translations, 0, "identical fetch orders");
        assert_eq!(xs.evictions, 0);
        let translated: u64 = reports.iter().map(|r| r.shared_misses).sum();
        assert_eq!(translated, xs.unique_chunks, "translate-once held");
    }

    #[test]
    fn event_loop_scan_fallback_serves_unregistrable_transports() {
        // Transports that decline readiness registration push the whole
        // loop onto the polling fallback — which must serve just as
        // correctly, if less efficiently.
        let (_, reports, xs) = run_fleet(true, 3, true);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.served > 0, "client {i} was served");
            assert!(r.disconnected, "client {i} hung up cleanly");
        }
        assert!(xs.balanced());
        let translated: u64 = reports.iter().map(|r| r.shared_misses).sum();
        assert_eq!(translated, xs.unique_chunks, "translate-once held");
    }

    #[test]
    fn admission_control_sheds_flooding_client() {
        let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();
        let mut server = McServer::new(image);
        server.set_quotas(ServeQuotas {
            fair_share: 4,
            max_pending: 8,
        });
        let policy = LinkPolicy::default();
        let (mut cc_t, mc_t) = policy_pair(&policy);
        // Flood 64 garbage frames before the server even starts: far
        // over max_pending, so the backlog beyond the quota is shed.
        for _ in 0..64 {
            cc_t.send(vec![0u8; 4]).unwrap();
        }
        drop(cc_t);
        let reports = server.serve_event(vec![Box::new(mc_t)]);
        let r = reports[0];
        assert!(r.disconnected);
        assert!(r.queue_hwm >= 64, "backlog observed: {}", r.queue_hwm);
        assert!(
            r.admission_rejections >= 32,
            "excess shed: {}",
            r.admission_rejections
        );
        // Whatever was admitted was processed normally (runt frames).
        assert!(r.runt_frames > 0);
        assert_eq!(r.served, 0);
    }
}

#[cfg(test)]
mod stress {
    //! Lost-wakeup soak for the edge-triggered event loop. The oracle is
    //! scheduling-independent: every fleet must complete with correct
    //! outputs and **zero rescued wakeups** ([`ServeReport::lost_wakeups`])
    //! — client-side retry counters are deliberately not asserted, because
    //! on a loaded single-core host a descheduled server can push a clean
    //! reply past any finite receive timeout without any mark being lost.
    use super::*;
    use crate::cc::IcacheConfig;
    use crate::endpoint::McEndpoint;
    use crate::icache::SoftIcacheSystem;
    use softcache_minic as minic;
    use softcache_net::{policy_pair, LinkPolicy};

    const SRC: &str = r#"
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 40; i = i + 1) { s = s + i * i; puti(s); putc(' '); }
    return s & 0x7f;
}
"#;

    fn fleet_round(image: &softcache_isa::image::Image, n: usize) -> Vec<ServeReport> {
        let server = McServer::new(image.clone());
        let policy = LinkPolicy::default();
        let mut server_ends: Vec<Box<dyn Transport>> = Vec::new();
        let mut client_ends = Vec::new();
        for _ in 0..n {
            let (cc_t, mc_t) = policy_pair(&policy);
            server_ends.push(Box::new(mc_t));
            client_ends.push(cc_t);
        }
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve_event(server_ends));
            let clients: Vec<_> = client_ends
                .into_iter()
                .map(|cc_t| {
                    let image = image.clone();
                    scope.spawn(move || {
                        let mut sys = SoftIcacheSystem::with_endpoint(
                            image,
                            IcacheConfig::default(),
                            McEndpoint::remote(Box::new(cc_t)),
                        );
                        sys.run(&[]).unwrap()
                    })
                })
                .collect();
            for c in clients {
                let out = c.join().unwrap();
                assert_eq!(out.exit_code, (40 * 39 * 79 / 6) & 0x7f);
            }
            server_thread.join().unwrap()
        })
    }

    /// A quick soak rides in tier-1; `stress_no_lost_wakeups` (ignored)
    /// runs the long version on demand.
    #[test]
    fn event_loop_soak_never_rescues_a_wakeup() {
        let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();
        for iter in 0..10 {
            for (i, r) in fleet_round(&image, 16).iter().enumerate() {
                assert_eq!(
                    r.lost_wakeups, 0,
                    "iter {iter} client {i}: rescued a lost mark"
                );
                assert!(r.disconnected, "iter {iter} client {i}");
            }
        }
    }

    #[test]
    #[ignore]
    fn stress_no_lost_wakeups() {
        let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();
        for iter in 0..300 {
            for (i, r) in fleet_round(&image, 16).iter().enumerate() {
                assert_eq!(
                    r.lost_wakeups, 0,
                    "iter {iter} client {i}: rescued a lost mark"
                );
            }
        }
    }
}
