//! Threaded multi-client MC server.
//!
//! One memory controller process serving N embedded clients from a single
//! shared program image — the fan-in configuration the paper's server-side
//! rewriting cost argument points toward ("the (relatively unconstrained)
//! server", §1). Each client connection gets its own serve thread and its
//! own [`Mc`]: the residence mirror is per-client state (every CC has its
//! own tcache layout), while the immutable text segment is shared through
//! an [`Arc`]. Data memory is also per-client, so one client's stores can
//! never leak into another's run — per-client outputs are byte-identical
//! to single-client runs.

use crate::endpoint::{serve, ServeReport};
use crate::mc::{ChunkStrategy, Mc};
use softcache_isa::image::Image;
use softcache_net::Transport;
use std::sync::Arc;

/// A multi-client MC server over one shared program image.
pub struct McServer {
    image: Arc<Image>,
    epoch: u32,
    strategy: ChunkStrategy,
}

impl McServer {
    /// Server over `image`, epoch 1, basic-block chunks.
    pub fn new(image: Image) -> McServer {
        McServer {
            image: Arc::new(image),
            epoch: 1,
            strategy: ChunkStrategy::BasicBlock,
        }
    }

    /// Set the session epoch handed to every per-client MC.
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Set the chunk-formation strategy for every per-client MC.
    pub fn set_strategy(&mut self, strategy: ChunkStrategy) {
        self.strategy = strategy;
    }

    /// The shared image (for spinning up clients against the same text).
    pub fn image(&self) -> Arc<Image> {
        Arc::clone(&self.image)
    }

    /// Serve one client per transport until each disconnects, one thread
    /// per client (`std::thread::scope`), and return the per-client serve
    /// reports in the same order as `transports`.
    pub fn serve_clients(&self, transports: Vec<Box<dyn Transport>>) -> Vec<ServeReport> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = transports
                .into_iter()
                .map(|mut t| {
                    let image = Arc::clone(&self.image);
                    let epoch = self.epoch;
                    let strategy = self.strategy;
                    scope.spawn(move || {
                        let mut mc = Mc::from_shared(image);
                        mc.set_epoch(epoch);
                        mc.set_strategy(strategy);
                        serve(&mut mc, t.as_mut())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client serve thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::IcacheConfig;
    use crate::endpoint::McEndpoint;
    use crate::icache::SoftIcacheSystem;
    use softcache_minic as minic;
    use softcache_net::thread_pair;
    use std::time::Duration;

    #[test]
    fn serves_concurrent_clients_byte_identically() {
        let src = r#"
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 40; i = i + 1) { s = s + i * i; puti(s); putc(' '); }
    return s & 0x7f;
}
"#;
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();

        // Single-client reference run.
        let mut solo = SoftIcacheSystem::new(image.clone(), IcacheConfig::default());
        let want = solo.run(&[]).unwrap();

        let server = McServer::new(image.clone());
        let n = 4;
        let mut server_ends: Vec<Box<dyn Transport>> = Vec::new();
        let mut client_ends = Vec::new();
        for _ in 0..n {
            let (cc_t, mc_t) = thread_pair(Duration::from_millis(500));
            server_ends.push(Box::new(mc_t));
            client_ends.push(cc_t);
        }
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve_clients(server_ends));
            let clients: Vec<_> = client_ends
                .into_iter()
                .map(|cc_t| {
                    let image = image.clone();
                    scope.spawn(move || {
                        let mut sys = SoftIcacheSystem::with_endpoint(
                            image,
                            IcacheConfig::default(),
                            McEndpoint::remote(Box::new(cc_t)),
                        );
                        sys.run(&[]).unwrap()
                    })
                })
                .collect();
            for (i, c) in clients.into_iter().enumerate() {
                let out = c.join().unwrap();
                assert_eq!(out.exit_code, want.exit_code, "client {i}");
                assert_eq!(out.output, want.output, "client {i}");
            }
            let reports = server_thread.join().unwrap();
            assert_eq!(reports.len(), n);
            for (i, r) in reports.iter().enumerate() {
                assert!(r.served > 0, "client {i} was served");
                assert!(r.disconnected, "client {i} hung up cleanly");
            }
        });
    }
}
