//! The decode cache meets the rewriting runtime.
//!
//! The CC modifies tcache code at runtime: miss stubs are backpatched into
//! direct branches once the target chunk is resident, and invalidation
//! rewrites resident words back into stubs. The predecoded fast path
//! memoises decoded instructions, so these tests pin down the contract
//! that every patch is observed — a stale predecoded word would either
//! loop on a dead stub or jump into reclaimed tcache space.

use softcache_core::cc::{Cc, IcacheConfig};
use softcache_core::endpoint::McEndpoint;
use softcache_core::mc::Mc;
use softcache_minic as minic;
use softcache_net::LinkModel;
use softcache_sim::{ExecStats, Machine, Step, Trap};

const SRC: &str = r#"
int mix(int x) { return x * 7 + 3; }
int spin(int x) {
    int i;
    for (i = 0; i < 40; i = i + 1) x = mix(x) % 9973;
    return x;
}
int main() {
    int i; int s;
    s = 1;
    for (i = 0; i < 50; i = i + 1) s = (s + spin(s + i)) % 100000;
    return s % 128;
}
"#;

fn client(tcache_size: u32) -> (Machine, Cc, McEndpoint) {
    let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();
    let cfg = IcacheConfig {
        tcache_size,
        link: LinkModel::free(),
        ..IcacheConfig::default()
    };
    let mut machine = Machine::load_client(&image, &[]);
    let mut cc = Cc::new(cfg);
    let mut ep = McEndpoint::direct(Mc::new(image.clone()));
    let entry = cc.ensure(&mut machine, &mut ep, image.entry).unwrap();
    machine.cpu.pc = entry;
    (machine, cc, ep)
}

fn native_exit() -> i32 {
    let image = minic::compile_to_image(SRC, &minic::Options::default()).unwrap();
    let mut m = Machine::load_native(&image, &[]);
    m.run_native(200_000_000).unwrap()
}

/// Service a trap the way the client runtime does. Returns the exit code
/// once the program finishes.
fn service(step: Step, machine: &mut Machine, cc: &mut Cc, ep: &mut McEndpoint) -> Option<i32> {
    match step {
        Step::Running => None,
        Step::Exited(code) => Some(code),
        Step::Trapped(Trap::Miss { idx, .. }) => {
            cc.handle_miss(machine, ep, idx).unwrap();
            None
        }
        Step::Trapped(Trap::HashJump { target, .. })
        | Step::Trapped(Trap::HashCall { target, .. }) => {
            let tc = cc.hash_jump(machine, ep, target).unwrap();
            machine.cpu.pc = tc;
            None
        }
        Step::Trapped(t) => panic!("unexpected trap {t:?}"),
    }
}

/// A miss stub that the fast path has already executed (and therefore
/// predecoded) is backpatched by the CC; re-execution must observe the
/// patched word, not the memoised stub.
#[test]
fn backpatched_stub_is_observed_by_predecoded_path() {
    let (mut machine, mut cc, mut ep) = client(48 * 1024);

    // Drive with the predecoded fast path until the first miss stub fires.
    let (idx, at) = loop {
        match machine.step().unwrap() {
            Step::Running => {}
            Step::Trapped(Trap::Miss { idx, at }) => break (idx, at),
            s => {
                service(s, &mut machine, &mut cc, &mut ep);
            }
        }
    };

    // The stub word reached execution through the decode cache (the trap
    // proves it was fetched and decoded on the fast path).
    let stub_word = machine.mem.read_u32(at).unwrap();
    assert_eq!(
        softcache_isa::decode(stub_word).unwrap(),
        softcache_isa::Inst::Miss { idx },
        "trap came from a decoded miss stub"
    );
    assert!(
        machine.mem.is_code_watched(at),
        "tcache words sit behind the code-write barrier"
    );

    // Servicing the miss installs the target chunk and backpatches the
    // branch site that reached the stub — runtime writes into code the
    // fast path has already memoised. Every such write must pass through
    // the generation barrier so stale decodes are dropped.
    let gen_before = machine.mem.code_gen();
    cc.handle_miss(&mut machine, &mut ep, idx).unwrap();
    assert!(
        machine.mem.code_gen() > gen_before,
        "CC code writes bump the invalidation generation"
    );

    // Keep driving exclusively through the predecoded path. If a stale
    // decode were replayed the program would re-trap on dead stubs or
    // jump into reclaimed space; instead it must run to the native answer
    // and exercise real backpatching along the way.
    let mut exit = None;
    for _ in 0..2_000_000 {
        let s = machine.step().unwrap();
        if let Some(code) = service(s, &mut machine, &mut cc, &mut ep) {
            exit = Some(code);
            break;
        }
    }
    assert!(cc.stats.patches > 0, "run exercised backpatching");
    assert_eq!(exit, Some(native_exit()), "program semantics preserved");
}

/// Full differential run of the softcache client: predecoded fast path vs
/// the original fetch+decode slow path must agree bit-for-bit — exit code,
/// cycle count, every counter, and every CC statistic.
#[test]
fn predecoded_client_matches_slow_path_exactly() {
    let run = |fast: bool| -> (i32, ExecStats, u64, u64, u64) {
        let (mut machine, mut cc, mut ep) = client(8 * 1024);
        let exit = loop {
            let s = if fast {
                machine.step().unwrap()
            } else {
                machine.step_slow().unwrap()
            };
            if let Some(code) = service(s, &mut machine, &mut cc, &mut ep) {
                break code;
            }
            assert!(machine.stats.instructions < 200_000_000, "runaway");
        };
        (
            exit,
            machine.stats,
            cc.stats.translations,
            cc.stats.miss_traps,
            cc.stats.patches,
        )
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast, slow, "fast path diverged from slow path");
    assert_eq!(fast.0, native_exit(), "softcache run matches native");
    assert!(fast.4 > 0, "run exercised backpatching");
}

/// The small-tcache regime forces eviction + retranslation: stub words are
/// rewritten back and forth while the decode cache keeps memoising them.
#[test]
fn thrashing_tcache_never_replays_stale_decodes() {
    let want = native_exit();
    let (mut machine, mut cc, mut ep) = client(2048);
    let exit = loop {
        let s = machine.step().unwrap();
        if let Some(code) = service(s, &mut machine, &mut cc, &mut ep) {
            break code;
        }
        assert!(machine.stats.instructions < 200_000_000, "runaway");
    };
    assert_eq!(exit, want);
    assert!(cc.stats.flushes + cc.stats.chunk_invalidations > 0 || cc.stats.translations > 3);
}
