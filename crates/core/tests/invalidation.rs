//! Per-chunk invalidation — the paper's §2 "Invalidation" mechanism.
//!
//! "One invalidates a conventional cache entry by changing the tag ... With
//! rewriting, we need to find and change any and all pointers that
//! implicitly mark a basic block as valid": incoming branches recorded at
//! patch time, and return addresses on the stack. These tests drive a
//! program to steady state, invalidate chunks mid-run, and verify both the
//! bookkeeping and end-to-end correctness (the paper's self-modifying-code
//! restriction: explicit invalidation before reuse).

use softcache_core::cc::{Cc, IcacheConfig};
use softcache_core::endpoint::McEndpoint;
use softcache_core::mc::Mc;
use softcache_minic as minic;
use softcache_net::LinkModel;
use softcache_sim::{Machine, Step, Trap};

struct Driver {
    machine: Machine,
    cc: Cc,
    ep: McEndpoint,
}

impl Driver {
    fn new(src: &str, tcache_size: u32) -> Driver {
        let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
        let cfg = IcacheConfig {
            tcache_size,
            link: LinkModel::free(),
            ..IcacheConfig::default()
        };
        let mut machine = Machine::load_client(&image, &[]);
        let mut cc = Cc::new(cfg);
        let mut ep = McEndpoint::direct(Mc::new(image.clone()));
        let entry = cc.ensure(&mut machine, &mut ep, image.entry).unwrap();
        machine.cpu.pc = entry;
        Driver { machine, cc, ep }
    }

    /// Run up to `steps` instructions; returns Some(exit) if finished.
    fn run_steps(&mut self, steps: u64) -> Option<i32> {
        let target = self.machine.stats.instructions + steps;
        while self.machine.stats.instructions < target {
            match self.machine.step().unwrap() {
                Step::Running => {}
                Step::Exited(code) => return Some(code),
                Step::Trapped(Trap::Miss { idx, .. }) => {
                    self.cc
                        .handle_miss(&mut self.machine, &mut self.ep, idx)
                        .unwrap();
                }
                Step::Trapped(Trap::HashJump { target, .. })
                | Step::Trapped(Trap::HashCall { target, .. }) => {
                    let tc = self
                        .cc
                        .hash_jump(&mut self.machine, &mut self.ep, target)
                        .unwrap();
                    self.machine.cpu.pc = tc;
                }
                Step::Trapped(t) => panic!("{t:?}"),
            }
        }
        None
    }

    fn run_to_exit(&mut self) -> i32 {
        loop {
            if let Some(code) = self.run_steps(1_000_000) {
                return code;
            }
            assert!(
                self.machine.stats.instructions < 200_000_000,
                "runaway program"
            );
        }
    }
}

const LOOPY: &str = r#"
int helper(int x) { return x * 3 + 1; }
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 2000; i = i + 1) s = (s + helper(i)) % 100000;
    return s % 128;
}
"#;

fn native_exit(src: &str) -> i32 {
    let image = minic::compile_to_image(src, &minic::Options::default()).unwrap();
    let mut m = Machine::load_native(&image, &[]);
    m.run_native(200_000_000).unwrap()
}

#[test]
fn invalidating_absent_chunk_is_noop() {
    let mut d = Driver::new(LOOPY, 48 * 1024);
    let hit =
        d.cc.invalidate_chunk(&mut d.machine, &mut d.ep, 0xDEAD_BEE0)
            .unwrap();
    assert!(!hit);
    assert_eq!(d.run_to_exit(), native_exit(LOOPY));
}

#[test]
fn invalidate_resident_chunk_retranslates_and_preserves_semantics() {
    let want = native_exit(LOOPY);
    let mut d = Driver::new(LOOPY, 48 * 1024);
    // Warm up into the loop.
    assert!(d.run_steps(20_000).is_none());
    let warm_translations = d.cc.stats.translations;
    assert!(warm_translations > 3);

    // Invalidate the helper's entry chunk (a hot block with incoming
    // pointers from the loop body).
    let image = minic::compile_to_image(LOOPY, &minic::Options::default()).unwrap();
    let helper = image.symbol("helper").unwrap().addr;
    assert!(d.cc.is_resident(helper), "helper entry block is hot");
    let hit =
        d.cc.invalidate_chunk(&mut d.machine, &mut d.ep, helper)
            .unwrap();
    assert!(hit);
    assert!(!d.cc.is_resident(helper));
    assert_eq!(d.cc.stats.chunk_invalidations, 1);

    // The program must keep running correctly; the chunk re-translates on
    // the next call.
    assert_eq!(d.run_to_exit(), want);
    assert!(
        d.cc.stats.translations > warm_translations,
        "invalidated chunk was re-fetched"
    );
}

#[test]
fn repeated_invalidation_under_pressure() {
    let want = native_exit(LOOPY);
    let image = minic::compile_to_image(LOOPY, &minic::Options::default()).unwrap();
    let helper = image.symbol("helper").unwrap().addr;
    let main_addr = image.symbol("main").unwrap().addr;

    let mut d = Driver::new(LOOPY, 2048);
    let mut invalidations = 0;
    loop {
        if let Some(code) = d.run_steps(5_000) {
            assert_eq!(code, want);
            break;
        }
        for target in [helper, main_addr] {
            if d.cc
                .invalidate_chunk(&mut d.machine, &mut d.ep, target)
                .unwrap()
            {
                invalidations += 1;
            }
        }
        assert!(
            d.machine.stats.instructions < 100_000_000,
            "runaway under invalidation pressure"
        );
    }
    assert!(invalidations > 10, "pressure test exercised invalidation");
}

#[test]
fn invalidation_notifies_the_server_mirror() {
    let mut d = Driver::new(LOOPY, 48 * 1024);
    assert!(d.run_steps(20_000).is_none());
    let image = minic::compile_to_image(LOOPY, &minic::Options::default()).unwrap();
    let helper = image.symbol("helper").unwrap().addr;
    let before = d.ep.mc().unwrap().mirror_len();
    d.cc.invalidate_chunk(&mut d.machine, &mut d.ep, helper)
        .unwrap();
    let after = d.ep.mc().unwrap().mirror_len();
    assert_eq!(after, before - 1, "mirror entry removed");
    // The MC must re-serve (not self-resolve) the invalidated block: keep
    // running and confirm a new fetch happened.
    let served_before = d.ep.mc().unwrap().stats.blocks_served;
    assert!(d.run_steps(5_000).is_none());
    assert!(d.ep.mc().unwrap().stats.blocks_served > served_before);
}

#[test]
fn self_modifying_code_scenario() {
    // The paper: "Self-modifying programs must explicitly invalidate
    // newly-written instructions before they can be used." Simulate a
    // dynamic-linking-style patch: the MC's image is fixed, but we can
    // model the *client-visible* effect by invalidating after the MC's
    // content would have changed. Here we verify the weaker but crucial
    // property: invalidate-then-reexecute always re-fetches from the MC
    // (never runs the stale translation).
    let mut d = Driver::new(LOOPY, 48 * 1024);
    assert!(d.run_steps(10_000).is_none());
    let image = minic::compile_to_image(LOOPY, &minic::Options::default()).unwrap();
    let helper = image.symbol("helper").unwrap().addr;
    for _ in 0..3 {
        if d.cc.is_resident(helper) {
            let served = d.ep.mc().unwrap().stats.blocks_served;
            d.cc.invalidate_chunk(&mut d.machine, &mut d.ep, helper)
                .unwrap();
            assert!(d.run_steps(5_000).is_none());
            assert!(
                d.ep.mc().unwrap().stats.blocks_served > served,
                "stale translation must not be reused"
            );
        } else {
            assert!(d.run_steps(5_000).is_none());
        }
    }
    assert_eq!(d.run_to_exit(), native_exit(LOOPY));
}
