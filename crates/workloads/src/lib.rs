//! # softcache-workloads: the embedded benchmark programs
//!
//! minic implementations of the paper's benchmark set:
//!
//! | paper | here | notes |
//! |---|---|---|
//! | `129.compress` (SPEC95) | [`COMPRESS95`] | 12-bit LZW with compress's open-hash dictionary |
//! | `adpcmenc`/`adpcmdec` (MediaBench) | [`ADPCM_ENC`] / [`ADPCM_DEC`] | IMA ADPCM |
//! | `gzip` | [`GZIP`] | LZSS with deflate-style hash-chain match finder |
//! | `cjpeg` (MediaBench) | [`CJPEG`] | 8×8 integer DCT + quantise + RLE |
//! | `hextobdd` | [`HEXTOBDD`] | ROBDD build/apply with function-pointer op dispatch |
//! | `mpeg2enc` | [`MPEG2ENC`] | full-search motion estimation + residual DCT |
//!
//! Every workload ships with a deterministic input generator sized for the
//! experiments, plus helpers to compile to an [`Image`] and to compute the
//! expected output via the minic AST interpreter (the differential oracle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softcache_isa::Image;
use softcache_minic as minic;

/// LZW compressor (SPEC95 129.compress stand-in).
pub const COMPRESS95: &str = include_str!("../minic/compress95.mc");
/// IMA ADPCM encoder (MediaBench adpcmenc).
pub const ADPCM_ENC: &str = include_str!("../minic/adpcm_enc.mc");
/// IMA ADPCM decoder (MediaBench adpcmdec).
pub const ADPCM_DEC: &str = include_str!("../minic/adpcm_dec.mc");
/// LZSS compressor (gzip stand-in).
pub const GZIP: &str = include_str!("../minic/gzip.mc");
/// JPEG-style block encoder (MediaBench cjpeg stand-in).
pub const CJPEG: &str = include_str!("../minic/cjpeg.mc");
/// BDD graph-manipulation workload (hextobdd).
pub const HEXTOBDD: &str = include_str!("../minic/hextobdd.mc");
/// Motion-estimation video encoder kernel (mpeg2enc stand-in).
pub const MPEG2ENC: &str = include_str!("../minic/mpeg2enc.mc");
/// Linked-but-cold utility code, playing the role of libc/option-parsing
/// code in the paper's statically linked binaries (see Table 1: compress's
/// static text is 9x its dynamic text). Appended by [`with_coldlib`].
pub const COLDLIB: &str = include_str!("../minic/coldlib.mc");

/// A workload source with the cold library linked in — the configuration
/// used by the footprint experiments (Table 1, Figure 9), where static
/// image size includes code that never runs.
pub fn with_coldlib(source: &str) -> String {
    format!("{source}\n{COLDLIB}")
}

/// One benchmark: source, name, input generator.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Short name (matches the paper's tables).
    pub name: &'static str,
    /// minic source.
    pub source: &'static str,
    /// Whether the program contains computed jumps / indirect calls even
    /// when jump tables are disabled (such programs cannot run on the
    /// ARM-style procedure cache).
    pub needs_indirect: bool,
    /// Deterministic input generator; `scale` loosely controls input size.
    pub gen_input: fn(scale: u32) -> Vec<u8>,
}

impl Workload {
    /// Compile to an image. `jump_tables = false` produces ARM-prototype
    /// compatible code (no indirect jumps) for switch-free programs.
    pub fn image(&self, jump_tables: bool) -> Image {
        minic::compile_to_image(self.source, &minic::Options { jump_tables })
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }

    /// Expected (exit code, output) from the AST interpreter.
    pub fn expected(&self, input: &[u8], fuel: u64) -> (i32, Vec<u8>) {
        let prog = minic::parser::parse(self.source).expect("workload parses");
        let syms = minic::sema::analyze(&prog).expect("workload checks");
        let out = minic::interp::run(&prog, &syms, input, fuel).expect("workload interprets");
        (out.exit_code, out.output)
    }
}

// ---- input generators ----

fn text_input(scale: u32) -> Vec<u8> {
    // English-like text with heavy repetition — the bread and butter of
    // LZW/LZSS compressors.
    let mut rng = StdRng::seed_from_u64(0x5eed_c0de);
    let words = [
        "the",
        "quick",
        "sensor",
        "network",
        "cache",
        "rewriting",
        "embedded",
        "server",
        "memory",
        "hierarchy",
        "binary",
        "miss",
        "hit",
        "block",
        "translate",
    ];
    let mut out = Vec::with_capacity((scale as usize) * 256);
    while out.len() < (scale as usize) * 256 {
        let w = words[rng.gen_range(0..words.len())];
        out.extend_from_slice(w.as_bytes());
        out.push(if rng.gen_range(0..8) == 0 {
            b'\n'
        } else {
            b' '
        });
    }
    out
}

fn pcm_input(scale: u32) -> Vec<u8> {
    // Sine-ish 16-bit PCM with noise (integer-synthesised, deterministic).
    let mut rng = StdRng::seed_from_u64(42);
    let n = (scale as usize) * 64;
    let mut out = Vec::with_capacity(n * 2);
    let mut phase: i64 = 0;
    for i in 0..n {
        phase += 400 + ((i / 256) % 7) as i64 * 60;
        // Triangle wave approximation of sine to stay in integers.
        let t = (phase % 20000 - 10000).abs() - 5000;
        let s = (t * 3).clamp(-16000, 16000) + rng.gen_range(-300..300);
        out.extend_from_slice(&(s as i16).to_le_bytes());
    }
    out
}

fn adpcm_stream_input(scale: u32) -> Vec<u8> {
    // A plausible ADPCM byte stream: encode the PCM input with the same
    // algorithm (Rust-side mirror of the encoder's state machine).
    let pcm = pcm_input(scale);
    let steptab: [i32; 89] = [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60,
        66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371,
        408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
        2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845,
        8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
        29794, 32767,
    ];
    let idxtab: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];
    let mut valpred = 0i32;
    let mut index = 0i32;
    let mut encode = |val: i32| -> u8 {
        let mut step = steptab[index as usize];
        let mut diff = val - valpred;
        let sign = if diff < 0 {
            diff = -diff;
            8
        } else {
            0
        };
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 1;
            vpdiff += step;
        }
        valpred = if sign != 0 {
            valpred - vpdiff
        } else {
            valpred + vpdiff
        }
        .clamp(-32768, 32767);
        delta |= sign;
        index = (index + idxtab[delta as usize]).clamp(0, 88);
        delta as u8
    };
    let mut out = Vec::new();
    let mut it = pcm
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]) as i32);
    while let Some(a) = it.next() {
        let c0 = encode(a);
        let c1 = it.next().map(&mut encode).unwrap_or(0);
        out.push(c0 | (c1 << 4));
    }
    out
}

fn image_input(_scale: u32) -> Vec<u8> {
    // 32x32 greyscale: smooth gradient + texture + noise.
    let mut rng = StdRng::seed_from_u64(7);
    let (w, h) = (32u32, 32u32);
    let mut out = vec![w as u8, h as u8];
    for y in 0..h {
        for x in 0..w {
            let v = 100
                + (x * 3 + y * 2) as i32 % 80
                + ((x / 8 + y / 8) % 2) as i32 * 20
                + rng.gen_range(-6..6);
            out.push(v.clamp(0, 255) as u8);
        }
    }
    out
}

fn hex_input(scale: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xbdd);
    let n = (scale as usize * 4).clamp(8, 200);
    (0..n)
        .map(|_| b"0123456789abcdef"[rng.gen_range(0..16)])
        .collect()
}

fn frames_input(scale: u32) -> Vec<u8> {
    // Count byte, a reference frame, then `scale` current frames. Frame k
    // is the base pattern shifted by (2k, k) with fresh noise, so every
    // frame sits at (2,1) relative to its predecessor and per-frame motion
    // estimation keeps finding the same vector as the encoder rolls
    // cur -> ref between frames.
    let mut rng = StdRng::seed_from_u64(99);
    let (w, h) = (48i32, 32i32);
    let pix =
        |x: i32, y: i32| -> u8 { (((x * 5 + y * 7) % 120 + ((x / 6) % 3) * 25 + 60) & 0xff) as u8 };
    let n = scale.clamp(1, 255) as i32;
    let mut out = Vec::with_capacity(1 + ((n + 1) * w * h) as usize);
    out.push(n as u8);
    for y in 0..h {
        for x in 0..w {
            out.push(pix(x, y));
        }
    }
    for f in 1..=n {
        for y in 0..h {
            for x in 0..w {
                let v = pix(x - 2 * f, y - f) as i32 + rng.gen_range(-3..3);
                out.push(v.clamp(0, 255) as u8);
            }
        }
    }
    out
}

/// All workloads.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "compress95",
            source: COMPRESS95,
            needs_indirect: false,
            gen_input: text_input,
        },
        Workload {
            name: "adpcmenc",
            source: ADPCM_ENC,
            needs_indirect: false,
            gen_input: pcm_input,
        },
        Workload {
            name: "adpcmdec",
            source: ADPCM_DEC,
            needs_indirect: false,
            gen_input: adpcm_stream_input,
        },
        Workload {
            name: "gzip",
            source: GZIP,
            needs_indirect: false,
            gen_input: text_input,
        },
        Workload {
            name: "cjpeg",
            source: CJPEG,
            needs_indirect: false,
            gen_input: image_input,
        },
        Workload {
            name: "hextobdd",
            source: HEXTOBDD,
            needs_indirect: true,
            gen_input: hex_input,
        },
        Workload {
            name: "mpeg2enc",
            source: MPEG2ENC,
            needs_indirect: false,
            gen_input: frames_input,
        },
    ]
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcache_sim::Machine;

    fn differential(w: &Workload, scale: u32) {
        let input = (w.gen_input)(scale);
        let (want_code, want_out) = w.expected(&input, 2_000_000_000);
        for jt in [true, false] {
            let image = w.image(jt);
            let mut m = Machine::load_native(&image, &input);
            let code = m
                .run_native(500_000_000)
                .unwrap_or_else(|e| panic!("{} (jt={jt}): {e}", w.name));
            assert_eq!(code, want_code, "{} exit code (jt={jt})", w.name);
            assert_eq!(
                m.env.output, want_out,
                "{} output diverged (jt={jt})",
                w.name
            );
        }
    }

    #[test]
    fn compress95_differential() {
        differential(&by_name("compress95").unwrap(), 8);
    }

    #[test]
    fn adpcmenc_differential() {
        differential(&by_name("adpcmenc").unwrap(), 8);
    }

    #[test]
    fn adpcmdec_differential() {
        differential(&by_name("adpcmdec").unwrap(), 8);
    }

    #[test]
    fn gzip_differential() {
        differential(&by_name("gzip").unwrap(), 8);
    }

    #[test]
    fn cjpeg_differential() {
        differential(&by_name("cjpeg").unwrap(), 1);
    }

    #[test]
    fn hextobdd_differential() {
        differential(&by_name("hextobdd").unwrap(), 4);
    }

    #[test]
    fn mpeg2enc_differential() {
        differential(&by_name("mpeg2enc").unwrap(), 1);
    }

    #[test]
    fn compression_actually_compresses() {
        // LZW and LZSS must beat raw size on repetitive text.
        let input = text_input(16);
        for name in ["compress95", "gzip"] {
            let w = by_name(name).unwrap();
            let (_, out) = w.expected(&input, 2_000_000_000);
            assert!(
                out.len() < input.len() * 9 / 10,
                "{name}: {} bytes from {} input",
                out.len(),
                input.len()
            );
        }
    }

    #[test]
    fn adpcm_roundtrip_tracks_signal() {
        // encode → decode must approximate the original waveform.
        let enc = by_name("adpcmenc").unwrap();
        let dec = by_name("adpcmdec").unwrap();
        let pcm = pcm_input(4);
        let (_, coded) = enc.expected(&pcm, 2_000_000_000);
        let (_, decoded) = dec.expected(&coded, 2_000_000_000);
        let orig: Vec<i32> = pcm
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]) as i32)
            .collect();
        let back: Vec<i32> = decoded
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]) as i32)
            .collect();
        assert!(back.len() >= orig.len());
        // Skip the adaptation ramp-up, then demand bounded error.
        let mut err_acc = 0i64;
        let n = orig.len().min(back.len());
        for i in n / 4..n {
            err_acc += (orig[i] - back[i]).abs() as i64;
        }
        let mean_err = err_acc / (n - n / 4) as i64;
        assert!(mean_err < 2000, "mean abs error {mean_err} too high");
    }

    #[test]
    fn mpeg2enc_finds_the_shift() {
        // The generated current frame is the reference shifted by (2,1);
        // interior macroblocks must report that motion vector.
        let w = by_name("mpeg2enc").unwrap();
        let input = frames_input(1);
        let (_, out) = w.expected(&input, 2_000_000_000);
        // Each macroblock: mvx+8, mvy+8, sad, nz*4. 6 macroblocks.
        // cur(x,y) == ref(x-2, y-1), so the matching block in the
        // reference sits at (-2,-1) relative to the current block; only
        // macroblocks away from the top/left borders can express it.
        assert!(out.len() > 7 * 6);
        let mut shifted = 0;
        for mb in 0..6 {
            let base = mb * 7;
            let mvx = out[base] as i32 - 8;
            let mvy = out[base + 1] as i32 - 8;
            if mvx == -2 && mvy == -1 {
                shifted += 1;
            }
        }
        assert!(
            shifted >= 2,
            "only {shifted} macroblocks found the (-2,-1) shift"
        );
    }

    #[test]
    fn hextobdd_is_deterministic_and_bounded() {
        let w = by_name("hextobdd").unwrap();
        let (code, out) = w.expected(&hex_input(4), 2_000_000_000);
        let (code2, out2) = w.expected(&hex_input(4), 2_000_000_000);
        assert_eq!((code, &out), (code2, &out2));
        // Final line is the node count.
        let text = String::from_utf8_lossy(&out);
        let last = text.lines().last().unwrap();
        let nodes: i32 = last.parse().unwrap();
        assert!(nodes > 2 && nodes < 4096, "node count {nodes}");
    }

    #[test]
    fn arm_compatible_workloads_have_no_indirects() {
        use softcache_isa::decode;
        use softcache_isa::inst::Inst;
        for w in all() {
            if w.needs_indirect {
                continue;
            }
            let image = w.image(false);
            for (i, &word) in image.text.iter().enumerate() {
                if let Ok(inst) = decode(word) {
                    assert!(
                        !matches!(inst, Inst::Jr { .. } | Inst::Jalr { .. }),
                        "{}: indirect at word {i}",
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        for w in all() {
            assert_eq!((w.gen_input)(4), (w.gen_input)(4), "{}", w.name);
        }
        assert!(text_input(8).len() > text_input(4).len());
    }
}

#[cfg(test)]
mod coldlib_tests {
    use super::*;
    use softcache_sim::Machine;

    #[test]
    fn coldlib_links_into_every_workload() {
        for w in all() {
            let src = with_coldlib(w.source);
            let img = softcache_minic::compile_to_image(
                &src,
                &softcache_minic::Options { jump_tables: true },
            )
            .unwrap_or_else(|e| panic!("{} + coldlib: {e}", w.name));
            let plain = w.image(true);
            assert!(
                img.text_bytes() > plain.text_bytes() + 2048,
                "{}: coldlib must add substantial static text ({} vs {})",
                w.name,
                img.text_bytes(),
                plain.text_bytes()
            );
        }
    }

    #[test]
    fn coldlib_functions_actually_work() {
        // The cold code must be *real* code, not filler: drive its
        // self-test through a tiny main.
        let src = format!("int main() {{ return cold_selftest(); }}\n{}", COLDLIB);
        let img =
            softcache_minic::compile_to_image(&src, &softcache_minic::Options::default()).unwrap();
        let mut m = Machine::load_native(&img, &[]);
        let code = m.run_native(50_000_000).unwrap();
        assert_eq!(code, 1, "cold_selftest must pass");
    }
}
