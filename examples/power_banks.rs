//! The paper's §4 power capability: "we could dynamically deduce the
//! working set and shut down unneeded memory banks to reduce power
//! consumption." The softcache placed every byte in the tcache itself, so
//! it knows the working set *exactly* — banks outside it sleep.
//!
//! ```sh
//! cargo run --example power_banks
//! ```

use softcache::core::icache::SoftIcacheSystem;
use softcache::core::power::{strongarm, BankConfig};
use softcache::core::IcacheConfig;
use softcache::net::LinkModel;
use softcache::workloads;

fn main() {
    println!(
        "StrongARM power breakdown (paper §4): I-cache {:.0}%, D-cache {:.0}%, \
         write buffer {:.0}% — {:.0}% of the chip is cache.\n",
        strongarm::ICACHE_FRACTION * 100.0,
        strongarm::DCACHE_FRACTION * 100.0,
        strongarm::WRITE_BUFFER_FRACTION * 100.0,
        strongarm::TOTAL_CACHE_FRACTION * 100.0,
    );

    for name in ["compress95", "adpcmenc", "gzip", "cjpeg"] {
        let w = workloads::by_name(name).unwrap();
        let image = w.image(true);
        let input = (w.gen_input)(8);
        let cfg = IcacheConfig {
            tcache_size: 32 * 1024,
            link: LinkModel::free(),
            ..IcacheConfig::default()
        };
        let banks = BankConfig {
            bank_bytes: 2 * 1024,
            banks: 16,
            ..BankConfig::default()
        };
        let mut sys = SoftIcacheSystem::new(image, cfg);
        let (out, report) = sys.run_with_power(&input, banks).expect("power run");
        println!(
            "{name:<11} awake {:>5.2}/16 banks | softcache {:>7.3} mJ vs hw {:>7.3} mJ \
             | memory -{:>2.0}% | chip -{:>2.0}% | exit={}",
            report.mean_awake_banks,
            report.energy_mj,
            report.hardware_baseline_mj,
            report.savings_fraction() * 100.0,
            report.chip_power_savings_fraction() * 100.0,
            out.exit_code,
        );
    }
    println!();
    println!("A hardware cache must keep every bank powered (it cannot know which");
    println!("sets the working set maps to); the fully associative softcache packs");
    println!("its working set densely and gates the rest.");
}
