//! The ARM-prototype deployment (§2.3): the memory controller runs on a
//! *separate thread* (standing in for the second Skiff board), serving
//! procedure-granularity chunks over a channel transport with the 60-byte
//! protocol overhead and a 10 Mbps link cost model. The client pages
//! procedures in and out of a small memory through pinned redirector stubs.
//!
//! ```sh
//! cargo run --example remote_paging
//! ```

use softcache::core::endpoint::{serve, McEndpoint};
use softcache::core::mc::Mc;
use softcache::core::proc::{ProcCacheSystem, ProcConfig};
use softcache::workloads;
use std::time::Duration;

fn main() {
    let workload = workloads::by_name("adpcmenc").expect("workload exists");
    // The ARM prototype does not support indirect jumps: compile without
    // jump tables.
    let image = workload.image(false);
    let input = (workload.gen_input)(16);
    println!(
        "adpcmenc: {} bytes of code, {} bytes of input",
        image.text_bytes(),
        input.len()
    );

    for memory_bytes in [image.text_bytes() + 512, image.text_bytes() / 2, 700] {
        // Server thread: the MC behind a channel transport.
        let (cc_end, mut mc_end) = softcache::net::thread_pair(Duration::from_millis(500));
        let server_image = image.clone();
        let server = std::thread::spawn(move || {
            let mut mc = Mc::new(server_image);
            serve(&mut mc, &mut mc_end);
            mc.stats
        });

        let cfg = ProcConfig {
            memory_bytes,
            ..ProcConfig::default()
        };
        let mut sys = ProcCacheSystem::with_endpoint(
            image.clone(),
            cfg,
            McEndpoint::remote(Box::new(cc_end)),
        );
        match sys.run(&input) {
            Ok(out) => {
                let secs = out.exec.cycles as f64 / 200e6; // 200 MHz client
                println!(
                    "CC memory {memory_bytes:>6} B: exit={:>3} fetches={:>4} evictions={:>4} \
                     redirectors={:>3} sim-time={:.3}s net={}B ({}B overhead)",
                    out.exit_code,
                    out.cache.fetches,
                    out.cache.evictions,
                    out.cache.redirectors,
                    secs,
                    out.cache.link.payload_bytes,
                    out.cache.link.overhead_bytes,
                );
            }
            Err(e) => println!("CC memory {memory_bytes:>6} B: {e}"),
        }
        drop(sys); // closes the channel; the server loop exits
        let mc_stats = server.join().expect("server thread");
        println!(
            "                 server saw {} procedure fetches, {} invalidations",
            mc_stats.procs_served, mc_stats.invalidations
        );
    }
    println!();
    println!("Shrinking CC memory turns one-time cold fetches into steady paging —");
    println!("the behaviour the paper's Figure 8 plots as evictions per second.");
}
