//! The complete software memory hierarchy of the paper: instructions
//! through the rewriting tcache (§2), data through the fully associative
//! predicted dcache, stack through the scache window (§3) — with scalar
//! globals pinned for the Figure 10 "specialised constant address" path.
//!
//! ```sh
//! cargo run --example full_softcache
//! ```

use softcache::core::datarun::FullSoftCacheSystem;
use softcache::core::dcache::{DcacheConfig, Prediction};
use softcache::core::scache::ScacheConfig;
use softcache::core::IcacheConfig;
use softcache::sim::Machine;
use softcache::workloads;

fn main() {
    let workload = workloads::by_name("cjpeg").expect("workload exists");
    let image = workload.image(true);
    let input = (workload.gen_input)(1);

    // Native baseline.
    let mut native = Machine::load_native(&image, &input);
    let native_code = native.run_native(500_000_000).expect("native run");
    println!(
        "cjpeg native: exit={native_code} cycles={} ({} instructions)",
        native.stats.cycles, native.stats.instructions
    );

    // Full softcache, sweeping the dcache prediction policy — the ablation
    // the paper's §3 design calls for.
    for pred in [
        Prediction::None,
        Prediction::SameIndex,
        Prediction::Stride,
        Prediction::SecondChance,
    ] {
        let dcfg = DcacheConfig {
            prediction: pred,
            capacity_blocks: 64,
            ..DcacheConfig::default()
        };
        let mut sys = FullSoftCacheSystem::new(
            image.clone(),
            IcacheConfig::default(),
            dcfg,
            ScacheConfig::default(),
        );
        let out = sys.run(&input).expect("full softcache run");
        assert_eq!(out.exit_code, native_code, "semantics preserved");
        assert_eq!(out.output, native.env.output, "output preserved");
        let total_hits = out.dcache.fast_hits + out.dcache.slow_hits;
        println!(
            "dcache {:12?}: fast={:>7} slow={:>6} miss={:>4} pinned={:>6} \
             fast-hit ratio={:.1}% extra cycles={}",
            pred,
            out.dcache.fast_hits,
            out.dcache.slow_hits,
            out.dcache.misses,
            out.dcache.pinned_hits,
            100.0 * out.dcache.fast_hits as f64 / total_hits.max(1) as f64,
            out.dcache.extra_cycles,
        );
    }
    println!();
    println!("All four policies produce identical output — prediction only");
    println!("moves accesses between the fast path and the (guaranteed) slow");
    println!("hit path, never to the server.");
}
