//! Quickstart: compile an embedded program with minic and run it under the
//! software instruction cache.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use softcache::core::icache::SoftIcacheSystem;
use softcache::core::IcacheConfig;
use softcache::minic;
use softcache::sim::Machine;

const PROGRAM: &str = r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int i;
    for (i = 1; i <= 10; i = i + 1) {
        puti(fib(i));
        putc(' ');
    }
    putc('\n');
    return fib(10);
}
"#;

fn main() {
    // 1. Compile: minic -> eRISC assembly -> linked image.
    let image =
        minic::compile_to_image(PROGRAM, &minic::Options::default()).expect("program compiles");
    println!(
        "compiled: {} bytes of text, {} bytes of data",
        image.text_bytes(),
        image.data.len()
    );

    // 2. Baseline: run natively on the simulator (the paper's "ideal").
    let mut native = Machine::load_native(&image, &[]);
    let code = native.run_native(100_000_000).expect("native run");
    println!(
        "native:    exit={code} output={:?} cycles={}",
        native.output_string(),
        native.stats.cycles
    );

    // 3. The same program under the software instruction cache: original
    //    text never enters client memory; every block arrives through the
    //    translation cache, rewritten by the (in-process) memory controller.
    let mut sys = SoftIcacheSystem::new(image, IcacheConfig::default());
    let out = sys.run(&[]).expect("softcache run");
    println!(
        "softcache: exit={} output={:?} cycles={}",
        out.exit_code,
        String::from_utf8_lossy(&out.output),
        out.exec.cycles
    );
    println!(
        "           translations={} miss_traps={} patches={} flushes={}",
        out.cache.translations, out.cache.miss_traps, out.cache.patches, out.cache.flushes
    );
    println!(
        "           tcache miss rate = {:.4}% (paper metric: blocks translated / instructions)",
        out.tcache_miss_rate_percent()
    );
    println!(
        "           slowdown vs native = {:.2}x",
        out.exec.cycles as f64 / native.stats.cycles as f64
    );
    assert_eq!(out.exit_code, code);
    assert_eq!(out.output, native.env.output);
    println!("outputs match — the cache is semantically transparent.");
}
