//! The paper's Figure 2 scenario: a sensor node whose firmware has four
//! modes (initialisation, calibration, daytime, nighttime) of which only
//! one is active at a time. Client memory is sized for *one* mode; the
//! software cache pages modes in across transitions, and — because the
//! tcache is fully associative — each mode runs **miss-free** once loaded.
//!
//! ```sh
//! cargo run --example sensor_modes
//! ```

use softcache::core::icache::SoftIcacheSystem;
use softcache::core::IcacheConfig;
use softcache::minic;

const SENSOR: &str = r#"
int readings[64];
int baseline = 0;

int sense(int t) {
    // Synthetic sensor input.
    return ((t * 37 + 11) % 97) + ((t >> 3) % 13);
}

int init_mode() {
    int i;
    for (i = 0; i < 64; i = i + 1) readings[i] = 0;
    return 0;
}

int calibrate_mode() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 200; i = i + 1) acc = acc + sense(i);
    baseline = acc / 200;
    return baseline;
}

int day_mode(int rounds) {
    int t; int v; int alerts;
    alerts = 0;
    for (t = 0; t < rounds; t = t + 1) {
        v = sense(t) - baseline;
        readings[t % 64] = v;
        if (v > 50) alerts = alerts + 1;
    }
    return alerts;
}

int night_mode(int rounds) {
    int t; int v; int acc;
    acc = 0;
    for (t = 0; t < rounds; t = t + 1) {
        v = sense(t * 3) - baseline;
        // Nighttime: aggregate instead of alerting.
        acc = acc + (v * v) / 16;
        readings[t % 64] = acc % 1000;
    }
    return acc % 256;
}

int main() {
    int a; int n;
    init_mode();
    calibrate_mode();
    a = day_mode(500);
    n = night_mode(500);
    a = a + day_mode(500);
    return (a * 7 + n) % 100;
}
"#;

fn main() {
    let image = minic::compile_to_image(SENSOR, &minic::Options::default()).unwrap();
    println!(
        "sensor firmware: {} bytes of code ({} functions)",
        image.text_bytes(),
        image.functions().len()
    );

    // Sweep the tcache from "fits everything" down to "fits one mode".
    for size in [16 * 1024u32, 1024, 640, 512] {
        let cfg = IcacheConfig {
            tcache_size: size,
            ..IcacheConfig::default()
        };
        let mut sys = SoftIcacheSystem::new(image.clone(), cfg);
        match sys.run(&[]) {
            Ok(out) => println!(
                "tcache {size:>6} B: exit={:>3} translations={:>4} flushes={:>3} \
                 miss rate={:.4}% cycles={}",
                out.exit_code,
                out.cache.translations,
                out.cache.flushes,
                out.tcache_miss_rate_percent(),
                out.exec.cycles,
            ),
            Err(e) => println!("tcache {size:>6} B: {e}"),
        }
    }
    println!();
    println!("The key observation (paper §1, Figure 2): the device only needs");
    println!("memory for the *active* mode. Shrinking the tcache adds paging at");
    println!("mode transitions but steady-state execution stays at full speed,");
    println!("and correctness is never at risk.");
}
