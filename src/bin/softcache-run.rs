//! `softcache-run` — compile a minic program and run it under any of the
//! softcache engines.
//!
//! ```sh
//! cargo run --bin softcache-run -- prog.mc                 # native
//! cargo run --bin softcache-run -- --engine icache prog.mc # software I-cache
//! cargo run --bin softcache-run -- --engine proc --memory 2048 prog.mc
//! cargo run --bin softcache-run -- --engine full prog.mc   # I + D + stack
//! echo -n "input bytes" | cargo run --bin softcache-run -- --stdin prog.mc
//! ```

use softcache::core::datarun::FullSoftCacheSystem;
use softcache::core::dcache::DcacheConfig;
use softcache::core::icache::SoftIcacheSystem;
use softcache::core::mc::ChunkStrategy;
use softcache::core::proc::{ProcCacheSystem, ProcConfig};
use softcache::core::scache::ScacheConfig;
use softcache::core::IcacheConfig;
use softcache::minic;
use softcache::sim::Machine;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    engine: String,
    tcache: u32,
    memory: u32,
    superblock: u32,
    jump_tables: bool,
    read_stdin: bool,
    disasm: bool,
    path: String,
}

const USAGE: &str = "\
usage: softcache-run [options] <program.mc>
  --engine <native|interp|icache|proc|full>   execution engine (default native)
  --tcache <bytes>       tcache size for icache/full (default 49152)
  --memory <bytes>       CC memory for proc (default 16384)
  --superblock <n>       superblock chunking, n blocks max (icache only)
  --no-jump-tables       lower switch to compare chains (required for proc)
  --stdin                feed stdin to the program as its input stream
  --disasm               print the compiled image's disassembly and exit";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        engine: "native".into(),
        tcache: 48 * 1024,
        memory: 16 * 1024,
        superblock: 0,
        jump_tables: true,
        read_stdin: false,
        disasm: false,
        path: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => opts.engine = args.next().ok_or("--engine needs a value")?,
            "--tcache" => {
                opts.tcache = args
                    .next()
                    .ok_or("--tcache needs a value")?
                    .parse()
                    .map_err(|_| "bad --tcache value")?
            }
            "--memory" => {
                opts.memory = args
                    .next()
                    .ok_or("--memory needs a value")?
                    .parse()
                    .map_err(|_| "bad --memory value")?
            }
            "--superblock" => {
                opts.superblock = args
                    .next()
                    .ok_or("--superblock needs a value")?
                    .parse()
                    .map_err(|_| "bad --superblock value")?
            }
            "--no-jump-tables" => opts.jump_tables = false,
            "--stdin" => opts.read_stdin = true,
            "--disasm" => opts.disasm = true,
            "--help" | "-h" => return Err(USAGE.into()),
            p if !p.starts_with('-') => opts.path = p.into(),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    if opts.path.is_empty() {
        return Err(USAGE.into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let input = if opts.read_stdin {
        let mut buf = Vec::new();
        if let Err(e) = std::io::stdin().read_to_end(&mut buf) {
            eprintln!("reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        Vec::new()
    };

    let mopts = minic::Options {
        jump_tables: opts.jump_tables,
    };

    if opts.engine == "interp" {
        // AST interpreter: no image needed.
        let prog = match minic::parser::parse(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        };
        let syms = match minic::sema::analyze(&prog) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        };
        return match minic::interp::run(&prog, &syms, &input, 2_000_000_000) {
            Ok(out) => {
                print_output(&out.output);
                eprintln!("[interp] exit={}", out.exit_code);
                code_of(out.exit_code)
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(1)
            }
        };
    }

    let image = match minic::compile_to_image(&source, &mopts) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    if opts.disasm {
        print!("{}", softcache::asm::disassemble(&image));
        return ExitCode::SUCCESS;
    }

    let fuel = 2_000_000_000;
    match opts.engine.as_str() {
        "native" => {
            let mut m = Machine::load_native(&image, &input);
            match m.run_native(fuel) {
                Ok(code) => {
                    print_output(&m.env.output);
                    eprintln!(
                        "[native] exit={code} instructions={} cycles={}",
                        m.stats.instructions, m.stats.cycles
                    );
                    code_of(code)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(1)
                }
            }
        }
        "icache" => {
            let cfg = IcacheConfig {
                tcache_size: opts.tcache,
                fuel,
                ..IcacheConfig::default()
            };
            let mut sys = SoftIcacheSystem::new(image, cfg);
            if opts.superblock > 1 {
                sys = sys.chunk_strategy(ChunkStrategy::Superblock {
                    max_blocks: opts.superblock,
                });
            }
            match sys.run(&input) {
                Ok(out) => {
                    print_output(&out.output);
                    eprintln!(
                        "[icache] exit={} translations={} miss_traps={} flushes={} \
                         miss_rate={:.4}% cycles={}",
                        out.exit_code,
                        out.cache.translations,
                        out.cache.miss_traps,
                        out.cache.flushes,
                        out.tcache_miss_rate_percent(),
                        out.exec.cycles
                    );
                    code_of(out.exit_code)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(1)
                }
            }
        }
        "proc" => {
            let cfg = ProcConfig {
                memory_bytes: opts.memory,
                fuel,
                ..ProcConfig::default()
            };
            match ProcCacheSystem::new(image, cfg).run(&input) {
                Ok(out) => {
                    print_output(&out.output);
                    eprintln!(
                        "[proc] exit={} fetches={} evictions={} redirectors={} cycles={}",
                        out.exit_code,
                        out.cache.fetches,
                        out.cache.evictions,
                        out.cache.redirectors,
                        out.exec.cycles
                    );
                    code_of(out.exit_code)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(1)
                }
            }
        }
        "full" => {
            let icfg = IcacheConfig {
                tcache_size: opts.tcache,
                fuel,
                ..IcacheConfig::default()
            };
            let mut sys = FullSoftCacheSystem::new(
                image,
                icfg,
                DcacheConfig::default(),
                ScacheConfig::default(),
            );
            match sys.run(&input) {
                Ok(out) => {
                    print_output(&out.output);
                    eprintln!(
                        "[full] exit={} translations={} dcache: fast={} slow={} miss={} \
                         scache: spills={} fills={} cycles={}",
                        out.exit_code,
                        out.icache.translations,
                        out.dcache.fast_hits,
                        out.dcache.slow_hits,
                        out.dcache.misses,
                        out.scache.spills,
                        out.scache.fills,
                        out.exec.cycles
                    );
                    code_of(out.exit_code)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(1)
                }
            }
        }
        other => {
            eprintln!("unknown engine `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn print_output(bytes: &[u8]) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(bytes);
}

fn code_of(code: i32) -> ExitCode {
    ExitCode::from((code & 0xff) as u8)
}
