//! # SoftCache
//!
//! A from-scratch reproduction of *"Software Caching using Dynamic Binary
//! Rewriting for Embedded Devices"* (Huneycutt, Fryman, Mackenzie — ICPP
//! 2002): instruction and data caching implemented entirely in software for
//! an embedded client that is permanently connected to a server.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`isa`] — the eRISC instruction set and program image format.
//! * [`asm`] — the assembler and linker.
//! * [`minic`] — the minic C-like compiler targeting eRISC.
//! * [`sim`] — the cycle-accounting machine simulator.
//! * [`hwcache`] — the hardware cache model used as the paper's baseline.
//! * [`net`] — the MC↔CC transport, protocol and network cost model.
//! * [`core`] — the software instruction/data caches built on dynamic
//!   binary rewriting (the paper's contribution).
//! * [`workloads`] — the embedded benchmark programs.
//!
//! ## Quickstart
//!
//! ```
//! use softcache::minic;
//! use softcache::core::icache::SoftIcacheSystem;
//! use softcache::core::IcacheConfig;
//!
//! // Compile an embedded program with the bundled minic compiler...
//! let image = minic::compile_to_image(
//!     "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) s = s + i; return s; }",
//!     &minic::Options::default(),
//! ).unwrap();
//!
//! // ...and run it under the software instruction cache.
//! let mut sys = SoftIcacheSystem::new(image, IcacheConfig::default());
//! let out = sys.run(&[]).unwrap();
//! assert_eq!(out.exit_code, 45);
//! ```

#![forbid(unsafe_code)]

pub use softcache_asm as asm;
pub use softcache_core as core;
pub use softcache_hwcache as hwcache;
pub use softcache_isa as isa;
pub use softcache_minic as minic;
pub use softcache_net as net;
pub use softcache_sim as sim;
pub use softcache_workloads as workloads;
