//! A self-contained, dependency-free property-testing shim.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the `proptest` API its tests actually use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, tuple/range/`Just`/
//! `prop_oneof!` combinators, [`arbitrary::any`], `prop::collection::vec`,
//! and the `prop_assert*` macros. Generation is deterministic (seeded per
//! test from the test's name) and there is no shrinking: a failing case
//! panics with the generated inputs' `Debug` rendering so it can be
//! reproduced by hand.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

pub mod test_runner {
    //! Runner configuration and failure type.

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::{Debug, Rc, TestRng};

    /// Generates values of `Self::Value` from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always generates its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy {
        type Value: Debug;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::{Debug, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `A`.
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs.

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Seed material derived from a test's name, so every test draws a distinct
/// deterministic stream.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Define property tests. Each function body runs `cases` times with fresh
/// generated inputs; a returned [`test_runner::TestCaseError`] or a
/// `prop_assert*` failure panics with the inputs that provoked it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            $(let $arg = &$strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?} "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        desc
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body (fails the case, reporting inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&v));
            let w = Strategy::generate(&(0u32..=3), &mut rng);
            assert!(w <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            x in 0u32..100,
            v in prop::collection::vec(any::<u8>(), 0..8),
            pick in prop_oneof![Just(1u8), (2u8..4).prop_map(|n| n)],
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert!((1..4).contains(&pick), "pick {}", pick);
            prop_assert_eq!(x + 1, x + 1);
        }
    }
}
