//! A self-contained, dependency-free RNG shim.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the `rand` 0.8 API it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open and
//! inclusive integer ranges. The generator is SplitMix64 — deterministic,
//! fast, and more than good enough for synthetic workload generation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-bit source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can sample uniformly (the shim's analog of
/// rand's `SampleUniform`).
pub trait UniformInt: Copy {
    /// Widen to `i128`.
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (the value is always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types `gen_range` accepts. The single blanket impl per range shape
/// lets integer-literal ranges unify with the sample type demanded by the
/// call site, as with rand proper.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range on empty range");
        let span = (hi - lo) as u64;
        T::from_i128(lo + (rng.next_u64() % span) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range on empty range");
        let span = (hi - lo + 1) as u64;
        T::from_i128(lo + (rng.next_u64() % span) as i128)
    }
}

/// Convenience sampling methods for any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa is plenty for test probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete RNG types.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(-300..300);
            assert!((-300..300).contains(&x));
            assert_eq!(x, b.gen_range(-300..300));
            let u: usize = a.gen_range(0..17);
            assert!(u < 17);
            let _ = b.gen_range(0usize..17);
        }
    }
}
