//! A self-contained, dependency-free benchmarking shim.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the `criterion` 0.5 API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. It measures wall time with
//! `std::time::Instant` and prints mean/min/max per benchmark — no HTML
//! reports, no statistics engine, but the same bench sources compile and
//! produce usable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement markers (only wall time is supported).

    /// Wall-clock measurement marker.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// routine invocation regardless of variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-iteration timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Finish the group (no-op; reports are printed per benchmark).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<44} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        samples.len()
    );
}

/// Benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; cargo's own `--bench` flag is skipped.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.matches(&id) {
            let mut b = Bencher {
                samples: Vec::with_capacity(self.default_sample_size),
                target_samples: self.default_sample_size,
            };
            f(&mut b);
            report(&id, &b.samples);
        }
        self
    }
}

/// Collect benchmark functions into a runner the `criterion_main!` macro
/// can invoke.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (std's implementation).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(4);
        let mut count = 0u32;
        g.bench_function("iter", |b| b.iter(|| count += 1));
        assert_eq!(count, 4);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
